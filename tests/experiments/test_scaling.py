"""Scaling beyond the paper's machine: multi-chip MetBench."""

import pytest

from repro.experiments.common import run_experiment
from repro.power5.machine import MachineTopology
from repro.workloads.metbench import (
    DEFAULT_BIG_LOAD,
    DEFAULT_SMALL_LOAD,
    MetBench,
)


def metbench8(iterations=14):
    """8 workers on a 2-chip (8-CPU) machine, one small/big pair per
    core — the paper's setup doubled."""
    loads = [DEFAULT_SMALL_LOAD, DEFAULT_BIG_LOAD] * 4
    return MetBench(loads=loads, iterations=iterations, cpus=list(range(8)))


TOPOLOGY = MachineTopology(chips=2)


@pytest.fixture(scope="module")
def results():
    return {
        sched: run_experiment(
            metbench8(), sched, topology=TOPOLOGY, keep_trace=False
        )
        for sched in ("cfs", "uniform")
    }


def test_eight_workers_run_on_eight_cpus(results):
    assert set(results["cfs"].tasks) == {f"P{i}" for i in range(1, 9)}


def test_baseline_imbalance_replicates_per_core(results):
    base = results["cfs"]
    for i in (1, 3, 5, 7):  # small-load workers
        assert base.tasks[f"P{i}"].pct_comp < 30
    for i in (2, 4, 6, 8):  # big-load workers
        assert base.tasks[f"P{i}"].pct_comp > 99


def test_hpcsched_balances_all_four_cores(results):
    uni = results["uniform"]
    base = results["cfs"]
    assert uni.improvement_over(base) > 8.0
    for name, tr in uni.tasks.items():
        assert tr.pct_comp > 90, name
    # one boost per big worker
    assert uni.priority_changes == 4


def test_iteration_time_matches_single_chip(results):
    """Cores are independent: doubling the machine must not change the
    per-iteration time (same core-pair workload everywhere)."""
    per_iter = results["cfs"].exec_time / 14
    assert per_iter == pytest.approx(81.78 / 45, rel=0.02)
