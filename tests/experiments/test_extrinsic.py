"""Extrinsic-imbalance (OS noise shielding) experiment tests."""

import pytest

from repro.experiments.extrinsic import run_extrinsic, run_one


@pytest.fixture(scope="module")
def out():
    return run_extrinsic(iterations=10)


def test_noise_creates_extrinsic_imbalance_under_cfs(out):
    base = out["cfs"]
    # the afflicted rank computes ~100%, the clean ranks wait for it
    assert base.tasks["P1"].pct_comp > 99.0
    clean = [base.tasks[n].pct_comp for n in ("P2", "P3", "P4")]
    assert all(c < 95.0 for c in clean)


def test_hpcsched_shields_from_noise(out):
    base = out["cfs"]
    for sched in ("uniform", "adaptive"):
        gain = out[sched].improvement_over(base)
        assert gain > 5.0, f"{sched}: {gain}"
        # the application returns to (near-)perfect balance
        comps = [out[sched].tasks[n].pct_comp for n in out[sched].tasks]
        assert min(comps) > 99.0


def test_priorities_end_equal(out):
    """The gain is class ordering, not prioritization: whatever level
    the detector settles on, all workers share it."""
    uni = out["uniform"]
    finals = set()
    for name, hist in uni.priority_history.items():
        finals.add(hist[-1][1] if hist else 4)
    assert len(finals) == 1


def test_single_run_helper():
    res = run_one("cfs", iterations=3, keep_trace=True)
    assert res.workload == "metbench-extrinsic"
    assert res.trace is not None
