"""Seed robustness: SIESTA's conclusions must not depend on the RNG.

The SIESTA workload is the only stochastic piece of the evaluation; if
its headline result (gain from latency, not balance) held for just one
seed it would be a fluke, not a reproduction.
"""

import pytest

from repro.experiments.common import run_experiment
from repro.workloads.noise import NoiseDaemons
from repro.workloads.siesta import Siesta

SEEDS = (1, 7, 20080415)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
def test_siesta_shape_holds_across_seeds(seed):
    noise = NoiseDaemons()
    base = run_experiment(
        Siesta(scf_steps=4, seed=seed), "cfs", noise=noise, keep_trace=False
    )
    uni = run_experiment(
        Siesta(scf_steps=4, seed=seed), "uniform", noise=noise, keep_trace=False
    )
    # gain in the paper's band
    gain = uni.improvement_over(base)
    assert 3.0 < gain < 9.0, f"seed {seed}: {gain}"
    # utilization ladder preserved and essentially unchanged
    base_comps = [base.tasks[f"P{i}"].pct_comp for i in range(1, 5)]
    assert base_comps == sorted(base_comps, reverse=True)
    for name in base.tasks:
        assert uni.tasks[name].pct_comp == pytest.approx(
            base.tasks[name].pct_comp, abs=5.0
        ), (seed, name)


@pytest.mark.slow
def test_noise_seed_does_not_change_the_story():
    for noise_seed in (3, 97):
        noise = NoiseDaemons(seed=noise_seed)
        base = run_experiment(
            Siesta(scf_steps=3), "cfs", noise=noise, keep_trace=False
        )
        uni = run_experiment(
            Siesta(scf_steps=3), "uniform", noise=noise, keep_trace=False
        )
        assert uni.exec_time < base.exec_time
