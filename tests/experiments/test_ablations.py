"""Ablation experiment tests (reduced sizes)."""

import pytest

from repro.experiments.ablations import (
    ablation_gl,
    ablation_latency,
    ablation_priority_range,
)


@pytest.mark.slow
def test_gl_sweep_produces_all_weightings():
    out = ablation_gl(weights=((1.0, 0.0), (0.1, 0.9)), iterations=6, k=3)
    assert "G=1.00/L=0.00" in out
    assert "G=0.10/L=0.90" in out
    assert "cfs" in out
    base = out["cfs"].exec_time
    # every weighting still beats the baseline on MetBenchVar
    for key, res in out.items():
        if key != "cfs":
            assert res.exec_time < base


@pytest.mark.slow
def test_latency_ablation_decomposes_gain():
    out = ablation_latency(scf_steps=4)
    assert out["hpcsched_full"] <= out["cfs"]
    assert out["hpc_policy_only"] <= out["cfs"]
    # most of SIESTA's gain is the scheduling policy itself (§V-D)
    assert out["policy_gain_pct"] > 0.5 * out["full_gain_pct"]


@pytest.mark.slow
def test_priority_range_ablation():
    out = ablation_priority_range(ranges=((4, 5), (4, 6)), iterations=6)
    base = out["cfs"].exec_time
    narrow = out["[4,5]"].exec_time
    paper = out["[4,6]"].exec_time
    assert paper < base
    # +-1 cannot balance MetBench's ~7x speed-ratio requirement as well
    assert paper <= narrow
