"""Oversubscription: more HPC ranks than logical CPUs.

The paper's operating assumption is one rank per CPU, "maybe two or
three during workload balancing" (§IV-A).  These tests run 8 MetBench
workers on the 4-CPU machine: the HPC class's round-robin queueing and
the workload balancer must keep everything live and roughly even.
"""

import pytest

from repro.experiments.common import run_experiment
from repro.kernel.policies import TaskState
from repro.workloads.metbench import MetBench


def oversubscribed(iterations=5):
    """8 equal workers, unpinned, on 4 CPUs."""
    return MetBench(
        loads=[0.5] * 8,
        iterations=iterations,
        cpus=[i % 4 for i in range(8)],
    )


@pytest.fixture(scope="module")
def results():
    return {
        sched: run_experiment(oversubscribed(), sched, keep_trace=True)
        for sched in ("cfs", "uniform")
    }


def test_all_ranks_complete(results):
    for res in results.values():
        assert len(res.tasks) == 8
        for tr in res.tasks.values():
            assert tr.running > 0


def test_two_ranks_per_cpu_share_time(results):
    """Each CPU hosts two ranks; total exec ~ 2x the per-rank work per
    iteration (they serialize on the context)."""
    res = results["uniform"]
    per_iter = res.exec_time / 5
    # two 0.5-unit workers share one context; ST speedup applies while
    # the sibling *pair* sleeps at the barrier tail
    assert 0.6 < per_iter < 1.3


def test_rr_interleaves_queued_hpc_tasks(results):
    """Within one CPU the two HPC ranks alternate via the RR slice, so
    their runtimes stay close."""
    res = results["uniform"]
    runtimes = sorted(tr.running for tr in res.tasks.values())
    assert runtimes[-1] / runtimes[0] < 1.5


def test_hpc_not_slower_than_cfs_when_oversubscribed(results):
    assert (
        results["uniform"].exec_time
        <= results["cfs"].exec_time * 1.05
    )
