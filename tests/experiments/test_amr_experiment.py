"""AMR experiment-module tests (registry wiring + matrix shape)."""

import pytest

from repro.experiments.amr import run_amr, run_one
from repro.experiments.registry import run_by_id


def test_registered():
    from repro.experiments.registry import all_ids

    assert "amr" in all_ids()


@pytest.mark.slow
def test_matrix_shape():
    out = run_by_id("amr", iterations=20)
    assert set(out) == {"cfs", "uniform", "adaptive", "hybrid"}
    base = out["cfs"]
    for sched in ("uniform", "adaptive", "hybrid"):
        assert out[sched].exec_time < base.exec_time
        assert out[sched].priority_changes >= 2


def test_run_one():
    res = run_one("cfs", iterations=4, keep_trace=False)
    assert res.workload == "amr-drift"
    assert len(res.tasks) == 4
