"""Experiment registry tests."""

import pytest

from repro.experiments.registry import EXPERIMENTS, all_ids, run_by_id


def test_all_paper_ids_registered():
    ids = all_ids()
    for required in (
        "table1", "table3", "table4", "table5", "table6",
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
        "ablation_gl", "ablation_latency", "ablation_priority_range",
    ):
        assert required in ids


def test_unknown_id_raises_with_known_list():
    with pytest.raises(KeyError, match="table3"):
        run_by_id("nope")


def test_run_by_id_dispatches():
    out = run_by_id("fig1")
    assert out["order_hpcsched"] == ["rt", "hpc", "fair", "idle"]
