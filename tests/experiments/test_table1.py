"""Table I / II exactness experiments."""

from repro.experiments.registry import run_by_id
from repro.experiments.table1 import (
    PAPER_TABLE1,
    generate_table1,
    generate_table2,
    render_table1,
)


def test_generated_table1_matches_paper_exactly():
    assert generate_table1() == PAPER_TABLE1


def test_run_table1_reports_exact():
    out = run_by_id("table1")
    assert out["table1_exact"] is True
    assert out["table2_exact"] is True


def test_render_table1_contains_all_rows():
    text = render_table1()
    for r in (2, 4, 8, 16, 32, 64):
        assert f" {r} " in text or f"{r:>4}" in text


def test_table2_has_eight_levels():
    rows = generate_table2()
    assert len(rows) == 8
    assert [r[0] for r in rows] == list(range(8))
