"""nice-vs-hardware-priority ablation tests."""

import pytest

from repro.experiments.nice_ablation import run_ablation_nice, run_nice


def test_nice_cannot_balance_one_rank_per_cpu():
    out = run_ablation_nice(iterations=6)
    assert out["nice"].exec_time == pytest.approx(
        out["cfs"].exec_time, rel=1e-6
    )
    assert out["uniform"].exec_time < out["cfs"].exec_time * 0.95


def test_nice_does_matter_when_sharing_a_cpu(quiet_kernel):
    """Control for the control: nice *does* redistribute when tasks
    actually share a runqueue."""
    from tests.conftest import pure_compute_program

    k = quiet_kernel
    fav = k.spawn("fav", pure_compute_program(5.0), cpu=0, cpus_allowed=[0],
                  nice=-15)
    vic = k.spawn("vic", pure_compute_program(5.0), cpu=0, cpus_allowed=[0],
                  nice=0)
    k.run(until=0.5)
    assert fav.sum_exec_runtime > 3 * vic.sum_exec_runtime


def test_run_nice_reports_utilizations():
    res = run_nice(iterations=4)
    assert res.scheduler == "nice"
    assert res.tasks["P1"].pct_comp < 30  # still imbalanced
    assert res.tasks["P2"].pct_comp > 99
