"""run_experiment plumbing tests."""

import pytest

from repro.experiments.common import SCHEDULERS, build_kernel, run_experiment
from repro.workloads import MetBench


def test_schedulers_tuple():
    assert SCHEDULERS == ("cfs", "static", "uniform", "adaptive")


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        run_experiment(MetBench(iterations=1), "bogus")


def test_build_kernel_is_papers_machine():
    k = build_kernel()
    assert k.machine.n_cpus == 4
    assert k.trace is not None


def test_result_fields_populated():
    res = run_experiment(MetBench(iterations=2), "uniform", keep_trace=True)
    assert res.workload == "metbench"
    assert res.scheduler == "uniform"
    assert res.exec_time > 0
    assert set(res.tasks) == {"P1", "P2", "P3", "P4"}
    assert res.trace is not None
    assert res.kernel is not None
    for tr in res.tasks.values():
        assert tr.priority is None  # dynamic
        assert 0 <= tr.pct_comp <= 100


def test_keep_trace_false_drops_heavy_handles():
    res = run_experiment(MetBench(iterations=2), "cfs", keep_trace=False)
    assert res.trace is None
    assert res.kernel is None
    assert res.launched is None
    assert res.tasks  # measurements survive


def test_static_priorities_fixed_in_result():
    res = run_experiment(
        MetBench(iterations=2),
        "static",
        static_priorities={"P2": 6, "P4": 6},
        keep_trace=False,
    )
    assert res.tasks["P2"].priority == 6
    assert res.tasks["P1"].priority == 4
    assert res.priority_changes == 0


def test_improvement_over():
    a = run_experiment(MetBench(iterations=2), "cfs", keep_trace=False)
    b = run_experiment(MetBench(iterations=2), "uniform", keep_trace=False)
    assert b.improvement_over(a) == pytest.approx(
        100.0 * (a.exec_time - b.exec_time) / a.exec_time
    )


def test_until_cuts_run_short():
    res = run_experiment(MetBench(iterations=50), "cfs", until=1.0, keep_trace=False)
    assert res.exec_time == pytest.approx(1.0)


def test_custom_tunables_flow_through():
    from repro.kernel.tunables import Tunables

    tun = Tunables()
    tun.set("hpcsched/max_prio", 5)
    res = run_experiment(
        MetBench(iterations=4), "uniform", tunables=tun, keep_trace=True
    )
    for hist in res.priority_history.values():
        for _, prio in hist:
            assert prio <= 5
