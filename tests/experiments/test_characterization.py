"""Characterization experiment (reference [4] methodology) tests."""

import pytest

from repro.experiments.characterization import (
    characterize,
    measure_pair,
    render,
)
from repro.power5.decode import decode_shares
from repro.power5.perfmodel import CPU_BOUND, MEM_BOUND


def test_equal_priorities_baseline():
    m = measure_pair(4, 4, duration=0.25)
    assert m.speed_a == pytest.approx(1.0, rel=1e-3)
    assert m.speed_b == pytest.approx(1.0, rel=1e-3)
    assert m.decode_share_a == pytest.approx(0.5, abs=1e-6)


def test_pmu_shares_match_table1():
    m = measure_pair(6, 2, duration=0.25)
    ea, eb = decode_shares(6, 2)
    assert m.decode_share_a == pytest.approx(ea, abs=1e-6)
    assert m.decode_share_b == pytest.approx(eb, abs=1e-6)


def test_speeds_round_trip_the_calibrated_model():
    m = measure_pair(6, 4, duration=0.25)
    assert m.speed_a == pytest.approx(CPU_BOUND.dprio_speed[2], rel=1e-3)
    assert m.speed_b == pytest.approx(CPU_BOUND.dprio_speed[-2], rel=1e-3)


def test_mem_bound_profile_insensitive():
    m = measure_pair(6, 4, profile=MEM_BOUND, duration=0.25)
    assert m.speed_a < 1.05
    assert m.speed_b > 0.95


@pytest.mark.slow
def test_full_sweep_consistency():
    from repro.experiments.registry import run_by_id

    out = run_by_id("characterization")
    assert out["max_share_error"] < 1e-9
    assert out["max_speed_error"] < 1e-9
    assert "speed of task A" in out["rendered"]


def test_render_matrix_shape():
    ms = characterize(prio_range=(3, 4, 5))
    text = render(ms)
    lines = text.splitlines()
    assert len(lines) == 2 + 3  # title + header + 3 rows
