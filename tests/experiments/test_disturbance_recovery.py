"""Reproduces the paper's Fig. 3(d) story: a transient disturbance
makes the heuristic take a wrong decision, and it recovers.

"the heuristic may respond too quickly and take the wrong decision.
However, [the trace] also shows how the Adaptive heuristic is able to
recover after the error." (paper §V-A)

We inject a one-shot RT interloper that steals a chunk of one balanced
iteration from a boosted worker's CPU; its utilization dips, the
detector thaws and may demote it (the 'error'); within a couple of
iterations the priorities are back and the run finishes close to the
undisturbed time.
"""

import pytest

from repro.experiments.common import build_kernel
from repro.hpcsched import AdaptiveHeuristic, attach_hpcsched
from repro.kernel.policies import SchedPolicy
from repro.kernel.syscalls import Compute
from repro.workloads.base import launch_workload
from repro.workloads.metbench import MetBench

ITERATIONS = 14
#: Fire the disturbance mid-run, well inside the frozen stable state.
DISTURB_AT = 10.0
#: The interloper steals this much CPU time from P4's context.
STEAL = 1.2


def run_disturbed(disturb: bool):
    """MetBench under Adaptive HPCSched, optionally with the interloper."""
    kernel = build_kernel()
    hpc = attach_hpcsched(kernel, AdaptiveHeuristic())
    launched = launch_workload(
        kernel, MetBench(iterations=ITERATIONS), use_hpc=True
    )
    if disturb:
        def interloper():
            yield Compute(STEAL)

        kernel.sim.after(
            DISTURB_AT,
            lambda: kernel.start_task(
                kernel.create_task(
                    "interloper",
                    interloper(),
                    policy=SchedPolicy.FIFO,
                    rt_priority=50,
                    cpus_allowed=[3],  # P4's CPU (a boosted worker)
                    daemon=True,
                ),
                cpu=3,
            ),
        )
    exec_time = kernel.run()
    return kernel, hpc, launched, exec_time


@pytest.fixture(scope="module")
def outcomes():
    clean = run_disturbed(False)
    disturbed = run_disturbed(True)
    return clean, disturbed


def test_disturbance_triggers_a_thaw(outcomes):
    (_, hpc_clean, _, _), (_, hpc_dist, _, _) = outcomes
    assert hpc_clean.detector.behaviour_changes == 0
    assert hpc_dist.detector.behaviour_changes >= 1


def test_extra_decisions_follow_the_disturbance(outcomes):
    (_, hpc_clean, _, _), (kernel, hpc_dist, launched, _) = outcomes
    assert hpc_dist.detector.priority_changes > hpc_clean.detector.priority_changes
    # every extra decision happened after the disturbance fired
    extra = [
        ev
        for ev in kernel.trace.events_of_kind("hw_priority")
        if ev.time > DISTURB_AT
    ]
    assert extra


def test_recovery_restores_the_balanced_priorities(outcomes):
    _, (kernel, hpc, launched, _) = outcomes
    # end state: big workers boosted, small workers at base — exactly
    # the pre-disturbance balance
    assert launched.tasks["P2"].hw_priority == 6
    assert launched.tasks["P4"].hw_priority == 6
    assert launched.tasks["P1"].hw_priority == 4
    assert launched.tasks["P3"].hw_priority == 4
    assert hpc.detector.frozen  # re-frozen after recovery


def test_cost_of_the_error_is_bounded(outcomes):
    (_, _, _, t_clean), (_, _, _, t_dist) = outcomes
    # the run pays for the stolen CPU plus at most a couple of
    # mis-balanced iterations, not a collapse
    assert t_dist - t_clean < STEAL / 2.05 + 2 * (t_clean / ITERATIONS)
