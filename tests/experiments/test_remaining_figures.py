"""Reduced-size coverage of the figure generators not exercised in
test_figures (fig4, fig5) and the .prv export of a full experiment."""

import pytest

from repro.experiments.figures import figure4, figure5


@pytest.mark.slow
def test_figure4_shows_reversal_and_recovery():
    out = figure4(iterations=9, k=3)
    assert set(out) == {"cfs", "static", "uniform", "adaptive"}
    # the static trace's middle period carries visible waiting for the
    # reversed pair, the dynamic traces stay mostly dark
    static_rows = out["static"]["gantt"].splitlines()
    p2_row = next(l for l in static_rows if l.startswith("P2"))
    assert "." in p2_row
    # At this reduced size (3-iteration periods) the dynamic scheduler's
    # 2-iteration adaptation window eats most of its edge, so it only
    # roughly matches static here; the full-size win is asserted by
    # benchmarks/bench_table4_metbenchvar.py.
    assert out["uniform"]["exec_time"] <= out["static"]["exec_time"] * 1.02


@pytest.mark.slow
def test_figure5_ladder_visible():
    out = figure5(iterations=15)
    cfs_rows = out["cfs"]["gantt"].splitlines()
    p1 = next(l for l in cfs_rows if l.startswith("P1"))
    p4 = next(l for l in cfs_rows if l.startswith("P4"))
    assert p1.count(".") > p4.count(".")


def test_prv_export_of_full_experiment(tmp_path):
    from repro.experiments.metbench import run_one
    from repro.trace.paraver import export_prv

    res = run_one("uniform", iterations=3, keep_trace=True)
    prv = export_prv(res.trace, res.exec_time)
    lines = prv.strip().splitlines()
    assert lines[0].startswith("#Paraver")
    kinds = {l.split(":")[0] for l in lines[1:]}
    assert kinds == {"1", "2"}  # states + events (priority changes)
    # the two boost events appear
    prio_events = [l for l in lines if l.startswith("2:") and l.endswith(":6")]
    assert len(prio_events) == 2
