"""The §IV-B 'cannot balance' regime: heterogeneous profile pairs.

When the heavy worker is memory-bound, prioritizing it buys ~nothing
while its CPU-bound sibling pays the full decode-starvation cost — no
priority assignment can balance the pair.  The paper predicts its
scheduler "will oscillate between two solutions without being able to
find the perfect balance"; our detector's observation round (downward-
only corrections while measuring) does better: it settles in a stable
state with a small bounded regression instead of flapping.

These tests pin that contract: no oscillation, bounded cost, detector
frozen.
"""

import pytest

from repro.experiments.common import run_experiment
from repro.power5.perfmodel import CPU_BOUND, MEM_BOUND
from repro.workloads.metbench import MetBench


def unbalanceable(iterations=16):
    """Big workers memory-bound: boosting them cannot speed them up,
    and the slowed CPU-bound siblings become the new stragglers."""
    return MetBench(
        loads=[1.1, 3.31, 1.1, 3.31],
        profiles=[CPU_BOUND, MEM_BOUND, CPU_BOUND, MEM_BOUND],
        iterations=iterations,
    )


@pytest.fixture(scope="module")
def runs():
    return {
        sched: run_experiment(unbalanceable(), sched, keep_trace=True)
        for sched in ("cfs", "uniform", "adaptive")
    }


@pytest.mark.parametrize("sched", ["uniform", "adaptive"])
def test_no_priority_flapping(runs, sched):
    """Bounded decision count: the initial (futile) boost, then
    stability — not one change per iteration."""
    res = runs[sched]
    assert res.priority_changes <= 4
    # no task's priority toggled back and forth repeatedly
    for hist in res.priority_history.values():
        assert len(hist) <= 2


@pytest.mark.parametrize("sched", ["uniform", "adaptive"])
def test_regression_is_bounded(runs, sched):
    """The futile boost costs a little (the sibling slowdown) but the
    stable state caps the damage."""
    base = runs["cfs"]
    loss = -runs[sched].improvement_over(base)
    assert loss < 6.0


def test_mem_bound_boost_is_futile(runs):
    """The boosted memory-bound workers barely sped up."""
    base = runs["cfs"]
    uni = runs["uniform"]
    # iteration time is still set by roughly the same bound
    assert uni.exec_time >= base.exec_time * 0.99


def test_detector_reaches_stable_state(runs):
    res = runs["uniform"]
    hpc = None
    for cls in res.kernel.classes:
        if cls.name == "hpc":
            hpc = cls
    assert hpc is not None
    assert hpc.detector.frozen
