"""Cross-cutting invariants over the whole (workload x scheduler)
matrix: every experiment run leaves the kernel consistent, accounts its
time, and its measurements are internally coherent."""

import pytest

from repro.experiments.common import run_experiment
from repro.kernel.cpuacct import class_cpu_time
from repro.kernel.procfs import consistency_check
from repro.workloads.amr import AMRDrift
from repro.workloads.btmz import BTMZ
from repro.workloads.metbench import MetBench
from repro.workloads.metbenchvar import MetBenchVar
from repro.workloads.siesta import Siesta

CASES = [
    ("metbench", lambda: MetBench(iterations=4)),
    ("metbenchvar", lambda: MetBenchVar(iterations=4, k=2)),
    ("btmz", lambda: BTMZ(iterations=8)),
    ("siesta", lambda: Siesta(scf_steps=2, subiters=60)),
    ("amr", lambda: AMRDrift(iterations=8)),
]
SCHEDULERS = ["cfs", "uniform", "adaptive", "hybrid"]


@pytest.mark.parametrize("wl_name,factory", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_run_invariants(wl_name, factory, scheduler):
    res = run_experiment(factory(), scheduler, keep_trace=True)
    kernel = res.kernel

    # 1. kernel state consistent at the end
    assert consistency_check(kernel) == []

    # 2. every measured task's state intervals tile its lifetime
    for name, tr in res.tasks.items():
        assert tr.running > 0, name
        assert 0.0 <= tr.pct_comp <= 100.0
        assert tr.running + tr.ready + tr.waiting <= res.exec_time * 1.001

    # 3. occupancy never exceeds machine capacity
    total_cpu = sum(class_cpu_time(kernel).values())
    assert total_cpu <= res.exec_time * kernel.machine.n_cpus * 1.001

    # 4. hardware priorities within the HPCSched window (dynamic runs)
    if scheduler != "cfs":
        lo = kernel.tunables.get("hpcsched/min_prio")
        hi = kernel.tunables.get("hpcsched/max_prio")
        for hist in res.priority_history.values():
            for _, prio in hist:
                assert lo <= prio <= hi

    # 5. exec time is positive and finite
    assert 0.0 < res.exec_time < 1e6
