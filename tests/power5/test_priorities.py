"""Exactness tests against the paper's Table II."""

import pytest

from repro.power5.priorities import (
    HWPriority,
    PrivilegeLevel,
    PriorityError,
    OR_NOP_REGISTER,
    can_set_priority,
    coerce_priority,
    or_nop_for_priority,
    priority_for_or_nop,
    required_privilege,
    settable_range,
)


# Paper Table II: (priority, privilege, or-nop register)
TABLE2 = [
    (0, PrivilegeLevel.HYPERVISOR, None),
    (1, PrivilegeLevel.SUPERVISOR, 31),
    (2, PrivilegeLevel.USER, 1),
    (3, PrivilegeLevel.USER, 6),
    (4, PrivilegeLevel.USER, 2),
    (5, PrivilegeLevel.SUPERVISOR, 5),
    (6, PrivilegeLevel.SUPERVISOR, 3),
    (7, PrivilegeLevel.HYPERVISOR, 7),
]


@pytest.mark.parametrize("prio,priv,reg", TABLE2)
def test_table2_privilege(prio, priv, reg):
    assert required_privilege(prio) == priv


@pytest.mark.parametrize("prio,priv,reg", [r for r in TABLE2 if r[2] is not None])
def test_table2_or_nop_encoding(prio, priv, reg):
    assert or_nop_for_priority(prio) == f"or {reg},{reg},{reg}"
    assert priority_for_or_nop(reg) == HWPriority(prio)


def test_priority_zero_has_no_or_nop():
    with pytest.raises(PriorityError):
        or_nop_for_priority(0)


def test_unknown_or_nop_register_rejected():
    with pytest.raises(PriorityError):
        priority_for_or_nop(9)


def test_or_nop_registers_are_unique():
    regs = list(OR_NOP_REGISTER.values())
    assert len(regs) == len(set(regs)) == 7


def test_user_can_set_2_to_4_only():
    assert settable_range(PrivilegeLevel.USER) == range(2, 5)
    for p in range(8):
        assert can_set_priority(p, PrivilegeLevel.USER) == (2 <= p <= 4)


def test_supervisor_can_set_1_to_6():
    assert settable_range(PrivilegeLevel.SUPERVISOR) == range(1, 7)
    for p in range(8):
        assert can_set_priority(p, PrivilegeLevel.SUPERVISOR) == (1 <= p <= 6)


def test_hypervisor_can_set_everything():
    assert settable_range(PrivilegeLevel.HYPERVISOR) == range(0, 8)
    for p in range(8):
        assert can_set_priority(p, PrivilegeLevel.HYPERVISOR)


def test_coerce_rejects_out_of_range():
    with pytest.raises(PriorityError):
        coerce_priority(8)
    with pytest.raises(PriorityError):
        coerce_priority(-1)


def test_coerce_accepts_all_valid():
    for p in range(8):
        assert coerce_priority(p) == HWPriority(p)


def test_privilege_ordering():
    assert PrivilegeLevel.USER < PrivilegeLevel.SUPERVISOR < PrivilegeLevel.HYPERVISOR
