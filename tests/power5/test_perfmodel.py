"""Performance-model tests: calibration constraints and invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.power5.perfmodel import (
    CPU_BOUND,
    MEM_BOUND,
    MIXED,
    DecodeShareModel,
    PerfProfile,
    TableDrivenModel,
)

PROFILES = [CPU_BOUND, MIXED, MEM_BOUND]
MODELS = [TableDrivenModel(), DecodeShareModel()]


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("model", MODELS)
def test_equal_priorities_give_baseline_speed(model, profile):
    assert model.speed(profile, 4, 4, True) == pytest.approx(1.0)


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("model", MODELS)
def test_idle_sibling_gives_st_speed(model, profile):
    assert model.speed(profile, 4, 4, False) == pytest.approx(profile.st_speedup)


@pytest.mark.parametrize("profile", PROFILES)
def test_table_monotonic_in_priority_difference(profile):
    model = TableDrivenModel()
    speeds = [model.speed(profile, p, 4, True) for p in range(2, 7)]
    assert speeds == sorted(speeds)


@pytest.mark.parametrize("profile", PROFILES)
def test_boost_helps_and_deprioritization_hurts(profile):
    model = TableDrivenModel()
    assert model.speed(profile, 6, 4, True) > 1.0
    assert model.speed(profile, 4, 6, True) < 1.0


def test_cpu_bound_asymmetry_order_of_magnitude():
    """Paper §I conclusion 1: reducing one task's execution time by X%
    can increase the sibling's by much more than X%."""
    model = TableDrivenModel()
    winner_time_reduction = 1.0 - 1.0 / model.speed(CPU_BOUND, 6, 4, True)
    loser_time_increase = 1.0 / model.speed(CPU_BOUND, 4, 6, True) - 1.0
    assert loser_time_increase > 2.0 * winner_time_reduction
    assert model.speed(CPU_BOUND, 4, 6, True) < 0.35


def test_plus_two_reaches_95_percent_of_max():
    """Paper §I conclusion 2: priority difference 2 yields ~95% of the
    maximum performance improvement."""
    model = TableDrivenModel()
    max_gain = CPU_BOUND.st_speedup - 1.0
    plus2_gain = model.speed(CPU_BOUND, 6, 4, True) - 1.0
    assert plus2_gain / max_gain >= 0.90


def test_metbench_static_balance_identity():
    """The Table III back-solve: balancing MetBench's big/small work
    ratio at +-2 requires speed(+2)/speed(-2) ~ big/small (see the
    MetBench workload's calibrated loads)."""
    from repro.workloads.metbench import DEFAULT_BIG_LOAD, DEFAULT_SMALL_LOAD

    model = TableDrivenModel()
    ratio = model.speed(CPU_BOUND, 6, 4, True) / model.speed(CPU_BOUND, 4, 6, True)
    assert ratio == pytest.approx(DEFAULT_BIG_LOAD / DEFAULT_SMALL_LOAD, rel=0.05)


def test_mem_bound_priorities_nearly_ineffective():
    model = TableDrivenModel()
    assert model.speed(MEM_BOUND, 6, 4, True) < 1.05
    assert model.speed(MEM_BOUND, 4, 6, True) > 0.95


def test_thread_off_semantics():
    model = TableDrivenModel()
    assert model.speed(CPU_BOUND, 0, 4, True) == 0.0
    assert model.speed(CPU_BOUND, 4, 0, True) == CPU_BOUND.st_speedup


def test_very_high_runs_at_st_speed():
    model = TableDrivenModel()
    assert model.speed(CPU_BOUND, 7, 4, True) == CPU_BOUND.st_speedup


def test_table_speed_clamps_to_edges():
    assert CPU_BOUND.table_speed(10) == CPU_BOUND.dprio_speed[4]
    assert CPU_BOUND.table_speed(-10) == CPU_BOUND.dprio_speed[-4]


def test_empty_table_profile_defaults_to_one():
    p = PerfProfile(name="flat", st_speedup=1.5, decode_fraction=0.5)
    assert p.table_speed(3) == 1.0


# ----------------------------------------------------------------------
# DecodeShareModel (analytic) specifics
# ----------------------------------------------------------------------
def test_decode_share_model_pure_decode_bound_doubles_at_full_share():
    p = PerfProfile(name="dec", st_speedup=2.0, decode_fraction=1.0)
    m = DecodeShareModel()
    # +4 difference: share 31/32 -> nearly 2x
    assert m.speed(p, 6, 2, True) == pytest.approx(
        1.0 / (0.5 / (31 / 32)), rel=1e-6
    )


def test_decode_share_model_never_exceeds_st():
    m = DecodeShareModel()
    for profile in PROFILES:
        for a in range(2, 7):
            for b in range(2, 7):
                assert m.speed(profile, a, b, True) <= profile.st_speedup + 1e-9


def test_decode_share_model_mem_bound_insensitive():
    p = PerfProfile(name="mem", st_speedup=1.1, decode_fraction=0.0)
    m = DecodeShareModel()
    assert m.speed(p, 6, 4, True) == pytest.approx(1.0)
    assert m.speed(p, 4, 6, True) == pytest.approx(1.0)


@given(st.integers(2, 6), st.integers(2, 6))
def test_property_decode_share_model_monotone(a, b):
    m = DecodeShareModel()
    if a < 6:
        assert m.speed(MIXED, a + 1, b, True) >= m.speed(MIXED, a, b, True) - 1e-12


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(2, 6),
    st.integers(2, 6),
)
def test_property_decode_share_speed_positive(frac, a, b):
    p = PerfProfile(name="x", st_speedup=2.0, decode_fraction=frac)
    m = DecodeShareModel()
    assert m.speed(p, a, b, True) > 0.0
