"""Topology validation: the POWER5 model is strictly 2-way SMT."""

import pytest

from repro.power5.machine import Machine, MachineTopology
from repro.power5.priorities import PriorityError


def test_single_thread_cores_rejected():
    with pytest.raises(PriorityError, match="2-way"):
        Machine(MachineTopology(threads_per_core=1))


def test_four_way_smt_rejected():
    with pytest.raises(PriorityError, match="2-way"):
        Machine(MachineTopology(threads_per_core=4))


def test_large_cluster_topologies_work():
    m = Machine(MachineTopology(chips=8, cores_per_chip=4))
    assert m.n_cpus == 64
    doms = m.domains()
    assert len(doms["context"]) == 32
    assert len(doms["core"]) == 8
