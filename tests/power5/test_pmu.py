"""PMU counter tests."""

import pytest

from repro.kernel import Compute, Sleep
from repro.power5.decode import decode_shares
from repro.power5.perfmodel import CPU_BOUND
from tests.conftest import pure_compute_program


def test_single_task_counters(quiet_kernel):
    k = quiet_kernel
    k.spawn("t", pure_compute_program(1.0), cpu=0)
    end = k.run()
    c = k.pmu.context_counters(0)
    assert c.busy_time == pytest.approx(end, rel=1e-6)
    assert c.st_time == pytest.approx(end, rel=1e-6)  # sibling idle
    assert c.avg_decode_share == pytest.approx(1.0)
    assert c.work_done == pytest.approx(1.0, rel=1e-6)


def test_corun_equal_priorities_split_decode(quiet_kernel):
    k = quiet_kernel
    k.spawn("a", pure_compute_program(1.0), cpu=0)
    k.spawn("b", pure_compute_program(1.0), cpu=1)
    k.run()
    ca = k.pmu.context_counters(0)
    cb = k.pmu.context_counters(1)
    assert ca.avg_decode_share == pytest.approx(0.5, abs=1e-6)
    assert cb.avg_decode_share == pytest.approx(0.5, abs=1e-6)
    assert ca.smt_time > 0


def test_priority_difference_measured_by_pmu(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(2.0), cpu=0)
    b = k.spawn("b", pure_compute_program(2.0), cpu=1)
    k.set_hw_priority(a, 6)  # +2 over b
    k.run(until=0.5)
    k.pmu.finalize(k.now)
    ca = k.pmu.context_counters(0)
    expect_a, _ = decode_shares(6, 4)
    assert ca.avg_decode_share == pytest.approx(expect_a, abs=1e-6)


def test_work_done_tracks_speed(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(10.0), cpu=0)
    b = k.spawn("b", pure_compute_program(10.0), cpu=1)
    k.set_hw_priority(a, 6)
    end = k.run(until=1.0)
    k.pmu.finalize(end)
    ca = k.pmu.context_counters(0)
    cb = k.pmu.context_counters(1)
    assert ca.work_done / cb.work_done == pytest.approx(
        CPU_BOUND.dprio_speed[2] / CPU_BOUND.dprio_speed[-2], rel=1e-3
    )


def test_st_time_accrues_when_sibling_sleeps(quiet_kernel):
    k = quiet_kernel

    def napper():
        yield Compute(0.2)
        yield Sleep(1.0)

    k.spawn("n", napper(), cpu=0)
    k.spawn("hog", pure_compute_program(2.0), cpu=1)
    end = k.run()
    hog = k.pmu.context_counters(1)
    assert hog.st_time > 0
    assert hog.smt_time > 0
    assert hog.busy_time == pytest.approx(hog.st_time + hog.smt_time)


def test_idle_context_counts_nothing(quiet_kernel):
    k = quiet_kernel
    k.spawn("t", pure_compute_program(0.5), cpu=0)
    k.run()
    assert k.pmu.context_counters(2).busy_time == 0.0
    assert k.pmu.context_counters(3).work_done == 0.0
