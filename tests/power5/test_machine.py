"""Machine topology and scheduling-domain tests."""

import pytest

from repro.power5.machine import Machine, MachineTopology


def test_default_is_papers_openpower710():
    m = Machine()
    assert m.topology.chips == 1
    assert m.topology.cores_per_chip == 2
    assert m.topology.threads_per_core == 2
    assert m.n_cpus == 4
    assert list(m.cpu_ids) == [0, 1, 2, 3]


def test_context_lookup_and_sibling():
    m = Machine()
    assert m.context(0).cpu_id == 0
    assert m.sibling_cpu(0) == 1
    assert m.sibling_cpu(1) == 0
    assert m.sibling_cpu(2) == 3
    assert m.sibling_cpu(3) == 2


def test_core_of_groups_cpu_pairs():
    m = Machine()
    assert m.core_of(0) is m.core_of(1)
    assert m.core_of(2) is m.core_of(3)
    assert m.core_of(0) is not m.core_of(2)


def test_domains_three_levels():
    m = Machine()
    doms = m.domains()
    assert doms["context"] == [[0, 1], [2, 3]]
    assert doms["core"] == [[0, 1, 2, 3]]
    assert doms["chip"] == [[0, 1, 2, 3]]


def test_multi_chip_topology():
    m = Machine(MachineTopology(chips=2))
    assert m.n_cpus == 8
    doms = m.domains()
    assert doms["context"] == [[0, 1], [2, 3], [4, 5], [6, 7]]
    assert doms["core"] == [[0, 1, 2, 3], [4, 5, 6, 7]]
    assert doms["chip"] == [[0, 1, 2, 3, 4, 5, 6, 7]]


def test_unique_cpu_ids_across_chips():
    m = Machine(MachineTopology(chips=3))
    assert len(set(m.cpu_ids)) == m.n_cpus == 12


def test_cores_enumeration():
    m = Machine(MachineTopology(chips=2))
    cores = m.cores()
    assert len(cores) == 4
    assert [c.core_id for c in cores] == [0, 1, 2, 3]
