"""POWER6 / CELL mechanism-variant tests."""

import pytest

from repro.power5.perfmodel import CPU_BOUND, DecodeShareModel
from repro.power5.priorities import PriorityError
from repro.power5.variants import (
    ARCHITECTURES,
    CELL_SPE_ARCH,
    POWER5_ARCH,
    POWER6_ARCH,
)


def test_registry():
    assert set(ARCHITECTURES) == {"power5", "power6", "cell-spe"}


def test_power5_arch_matches_native_decode():
    from repro.power5.decode import decode_shares

    for a in range(2, 7):
        for b in range(2, 7):
            assert POWER5_ARCH.shares(a, b) == decode_shares(a, b)


def test_power6_same_family_as_power5():
    assert POWER6_ARCH.n_levels == 8
    assert POWER6_ARCH.shares(6, 2) == POWER5_ARCH.shares(6, 2)


def test_cell_three_levels():
    assert CELL_SPE_ARCH.n_levels == 3
    with pytest.raises(PriorityError):
        CELL_SPE_ARCH.shares(3, 1)


def test_cell_shares_monotonic_and_normalized():
    for a in range(3):
        for b in range(3):
            sa, sb = CELL_SPE_ARCH.shares(a, b)
            assert sa + sb == pytest.approx(1.0)
            if a > b:
                assert sa > sb
    assert CELL_SPE_ARCH.shares(1, 1) == (0.5, 0.5)


def test_cell_span_is_coarser_than_power5():
    """3 levels give at most a 16:1 split; POWER5's ±4 gives 31:1."""
    cell_hi, _ = CELL_SPE_ARCH.shares(2, 0)
    p5_hi, _ = POWER5_ARCH.shares(6, 2)
    assert cell_hi < p5_hi


def test_decode_share_model_accepts_architecture():
    model = DecodeShareModel(architecture=CELL_SPE_ARCH)
    base = model.speed(CPU_BOUND, 1, 1, True)
    fast = model.speed(CPU_BOUND, 2, 0, True)
    slow = model.speed(CPU_BOUND, 0, 2, True)
    assert base == pytest.approx(1.0)
    assert fast > base > slow


def test_validate_range():
    with pytest.raises(PriorityError):
        POWER5_ARCH.validate(8)
    assert POWER5_ARCH.validate(4) == 4
