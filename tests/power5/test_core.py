"""SMT core / context model tests."""

import pytest

from repro.power5.core import SMTCore
from repro.power5.perfmodel import CPU_BOUND, TableDrivenModel
from repro.power5.priorities import HWPriority, PriorityError


@pytest.fixture
def core():
    return SMTCore(core_id=0, first_cpu_id=0, perf_model=TableDrivenModel())


def test_core_has_two_contexts(core):
    assert len(core.contexts) == 2
    assert core.contexts[0].cpu_id == 0
    assert core.contexts[1].cpu_id == 1


def test_strictly_two_way_smt():
    with pytest.raises(PriorityError):
        SMTCore(core_id=0, first_cpu_id=0, threads=4)


def test_sibling_linkage(core):
    a, b = core.contexts
    assert a.sibling is b
    assert b.sibling is a


def test_contexts_boot_at_medium_priority(core):
    for ctx in core.contexts:
        assert ctx.priority == HWPriority.MEDIUM
        assert not ctx.busy


def test_load_sets_task_priority_busy(core):
    ctx = core.contexts[0]
    ctx.load("task", 6)
    assert ctx.task == "task"
    assert ctx.priority == HWPriority.HIGH
    assert ctx.busy


def test_idle_drops_to_snooze_priority(core):
    ctx = core.contexts[0]
    ctx.load("task", 6)
    ctx.idle()
    assert ctx.task is None
    assert not ctx.busy
    assert ctx.priority == HWPriority.VERY_LOW


def test_st_mode_detection(core):
    assert core.st_mode()
    core.contexts[0].load("a", 4)
    assert core.st_mode()
    core.contexts[1].load("b", 4)
    assert not core.st_mode()


def test_context_speed_equal_priorities(core):
    core.contexts[0].load("a", 4)
    core.contexts[1].load("b", 4)
    assert core.context_speed(0, CPU_BOUND) == pytest.approx(1.0)
    assert core.context_speed(1, CPU_BOUND) == pytest.approx(1.0)


def test_context_speed_with_priority_difference(core):
    core.contexts[0].load("a", 6)
    core.contexts[1].load("b", 4)
    assert core.context_speed(0, CPU_BOUND) == pytest.approx(
        CPU_BOUND.dprio_speed[2]
    )
    assert core.context_speed(1, CPU_BOUND) == pytest.approx(
        CPU_BOUND.dprio_speed[-2]
    )


def test_context_speed_st_mode_when_sibling_idle(core):
    core.contexts[0].load("a", 4)
    assert core.context_speed(0, CPU_BOUND) == pytest.approx(CPU_BOUND.st_speedup)


def test_set_priority_rejects_invalid(core):
    with pytest.raises(PriorityError):
        core.contexts[0].set_priority(9)
