"""Tests of the Table I decode-slot arithmetic and special levels."""

import pytest
from hypothesis import given, strategies as st

from repro.power5.decode import (
    BACKGROUND_SHARE,
    DECODE_TABLE,
    decode_cycles,
    decode_shares,
    decode_window,
)
from repro.power5.priorities import PriorityError


# Paper Table I, verbatim.
PAPER_TABLE1 = {
    0: (2, 1, 1),
    1: (4, 3, 1),
    2: (8, 7, 1),
    3: (16, 15, 1),
    4: (32, 31, 1),
    5: (64, 63, 1),
}


def test_decode_table_matches_paper():
    assert DECODE_TABLE == PAPER_TABLE1


@pytest.mark.parametrize("diff,expected", sorted(PAPER_TABLE1.items()))
def test_window_formula(diff, expected):
    r, _, _ = expected
    # pick representative normal priorities with this difference
    lo = 2
    hi = lo + diff
    if hi <= 6:
        assert decode_window(hi, lo) == r
        assert decode_window(lo, hi) == r


def test_paper_example_priorities_6_and_2():
    """Paper §II-B: priorities 6 vs 2 -> fetch 31 times vs once."""
    assert decode_cycles(6, 2) == (31, 1)
    assert decode_cycles(2, 6) == (1, 31)


def test_equal_priorities_split_evenly():
    for p in range(2, 7):
        assert decode_cycles(p, p) == (1, 1)
        assert decode_shares(p, p) == (0.5, 0.5)


def test_cycles_sum_to_window():
    for a in range(2, 7):
        for b in range(2, 7):
            ca, cb = decode_cycles(a, b)
            if a == b:
                assert ca + cb == 2
            else:
                assert ca + cb == decode_window(a, b)


def test_shares_sum_to_one_normal_regime():
    for a in range(2, 7):
        for b in range(2, 7):
            sa, sb = decode_shares(a, b)
            assert sa + sb == pytest.approx(1.0)


def test_higher_priority_gets_more():
    for a in range(2, 7):
        for b in range(2, 7):
            sa, sb = decode_shares(a, b)
            if a > b:
                assert sa > sb
            elif a < b:
                assert sa < sb


def test_thread_off_gets_nothing():
    assert decode_shares(0, 4) == (0.0, 1.0)
    assert decode_shares(4, 0) == (1.0, 0.0)
    assert decode_shares(0, 0) == (0.0, 0.0)


def test_very_high_dominates():
    assert decode_shares(7, 4) == (1.0, 0.0)
    assert decode_shares(4, 7) == (0.0, 1.0)
    assert decode_shares(7, 7) == (0.5, 0.5)


def test_background_thread_scavenges():
    sa, sb = decode_shares(1, 4)
    assert sa == pytest.approx(BACKGROUND_SHARE)
    assert sb == pytest.approx(1.0 - BACKGROUND_SHARE)
    assert decode_shares(1, 1) == (0.5, 0.5)


def test_window_rejects_special_levels():
    for special in (0, 1, 7):
        with pytest.raises(PriorityError):
            decode_window(special, 4)
        with pytest.raises(PriorityError):
            decode_window(4, special)


def test_invalid_priority_raises():
    with pytest.raises(PriorityError):
        decode_shares(8, 4)


@given(st.integers(0, 7), st.integers(0, 7))
def test_property_shares_are_valid_fractions(a, b):
    sa, sb = decode_shares(a, b)
    assert 0.0 <= sa <= 1.0
    assert 0.0 <= sb <= 1.0
    assert sa + sb <= 1.0 + 1e-12


@given(st.integers(2, 6), st.integers(2, 6))
def test_property_share_symmetry(a, b):
    sa, sb = decode_shares(a, b)
    sb2, sa2 = decode_shares(b, a)
    assert sa == pytest.approx(sa2)
    assert sb == pytest.approx(sb2)


@given(st.integers(2, 6), st.integers(2, 6))
def test_property_window_is_power_of_two(a, b):
    r = decode_window(a, b)
    assert r & (r - 1) == 0  # power of two
    assert r == 2 ** (abs(a - b) + 1)
