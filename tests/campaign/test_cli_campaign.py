"""CLI: ``campaign run|status|report`` and ``run --param/--seed``."""

import json

from repro.cli import main


def test_campaign_run_status_report_round_trip(tmp_path, capsys):
    out_dir = tmp_path / "camp"
    argv = [
        "campaign", "run",
        "--experiments", "fig1,table1",
        "--jobs", "2",
        "--out", str(out_dir),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2/2 OK" in out
    assert (out_dir / "manifest.json").exists()
    assert (out_dir / "runs.jsonl").exists()
    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["status"] == "complete"
    assert manifest["totals"]["ok"] == 2

    # warm re-run: 100% cache-hit ratio
    assert main(argv) == 0
    assert "cache-hit ratio 100%" in capsys.readouterr().out

    assert main(["campaign", "status", str(out_dir)]) == 0
    status = capsys.readouterr().out
    assert "2/2 OK" in status and "hit" in status

    assert main(["campaign", "report", str(out_dir)]) == 0
    assert "campaign:" in capsys.readouterr().out


def test_campaign_smoke_builtin(tmp_path, capsys):
    assert (
        main(["campaign", "run", "smoke", "--jobs", "2", "--out", str(tmp_path / "s")])
        == 0
    )
    assert "2/2 OK" in capsys.readouterr().out


def test_campaign_unknown_builtin(tmp_path, capsys):
    assert main(["campaign", "run", "bogus", "--out", str(tmp_path / "x")]) == 2
    assert "unknown campaign" in capsys.readouterr().err


def test_campaign_failed_run_sets_exit_code(tmp_path, capsys):
    assert (
        main(
            [
                "campaign", "run",
                "--experiments", "not-an-experiment",
                "--out", str(tmp_path / "f"),
                "--retries", "0",
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "FAILED" in out and "0/1 OK" in out


def test_campaign_status_missing_dir(tmp_path, capsys):
    assert main(["campaign", "status", str(tmp_path / "nope")]) == 2
    assert "no campaign found" in capsys.readouterr().err


def test_run_with_param_override(capsys):
    assert main(["run", "fig2", "--param", "iterations=2"]) == 0
    out = capsys.readouterr().out
    assert "spans" in out


def test_run_param_and_iterations_share_code_path(capsys):
    # --iterations is folded into the same kwargs as --param
    assert main(["run", "fig2", "--iterations", "2"]) == 0
    assert "spans" in capsys.readouterr().out


def test_run_seed_ignored_note_for_non_seeded_runner(capsys):
    # run_table3 takes no seed and no **kwargs: the CLI notes the drop
    assert main(["run", "table3", "--seed", "5", "--param", "iterations=2"]) == 0
    captured = capsys.readouterr()
    assert "does not accept 'seed'" in captured.err


def test_run_bad_param_syntax():
    import pytest

    with pytest.raises(SystemExit):
        main(["run", "fig2", "--param", "oops"])
