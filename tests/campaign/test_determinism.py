"""Parallel campaigns must produce byte-identical results to serial.

Every experiment is bit-reproducible from its spec, so the campaign
layer doubles as a correctness harness: the same 4-run matrix executed
with ``jobs=1`` and ``jobs=4`` (fresh stores and caches) must yield
the same canonical payload bytes per run, and the executor's built-in
verifier must agree.
"""

import pytest

from repro.campaign import (
    CampaignConsistencyError,
    CampaignExecutor,
    CampaignSpec,
    CampaignStore,
    ResultCache,
    RunSpec,
    expand_matrix,
)


def fresh_executor(tmp_path, tag, jobs, **kw):
    return CampaignExecutor(
        jobs=jobs,
        cache=ResultCache(tmp_path / tag / "cache", source_token="t"),
        store=CampaignStore(tmp_path / tag / "camp"),
        verify=kw.pop("verify", 0),
        **kw,
    )


def test_stub_matrix_parallel_equals_serial(tmp_path):
    camp = expand_matrix(
        "m",
        ["stub"],
        seeds=[0, 1],
        grid={"value": [1.0, 2.5]},
    )
    for run in camp.runs:
        run.runner = "tests.campaign.stubs:ok_run"
    assert len(camp.runs) == 4
    serial = fresh_executor(tmp_path, "serial", jobs=1).run(camp)
    parallel = fresh_executor(tmp_path, "parallel", jobs=4).run(camp)
    assert len(serial.ok) == len(parallel.ok) == 4
    assert serial.payloads == parallel.payloads  # byte-for-byte


def test_real_experiment_parallel_equals_serial(tmp_path):
    camp = CampaignSpec(
        "real",
        [
            RunSpec("table3", params={"iterations": 2}),
            RunSpec("fig2", params={"iterations": 2}),
            RunSpec("table1"),
            RunSpec("fig1"),
        ],
    )
    serial = fresh_executor(tmp_path, "serial", jobs=1).run(camp)
    parallel = fresh_executor(tmp_path, "parallel", jobs=4).run(camp)
    assert not serial.failed and not parallel.failed
    assert serial.payloads == parallel.payloads


def test_builtin_verifier_passes_on_deterministic_runs(tmp_path):
    camp = CampaignSpec("v", [RunSpec("fig1"), RunSpec("table1")])
    result = fresh_executor(tmp_path, "v", jobs=2, verify=2).run(camp)
    assert result.verified == 2


def test_builtin_verifier_catches_nondeterminism(tmp_path):
    camp = CampaignSpec(
        "nd",
        [
            RunSpec(
                "nondet",
                runner="tests.campaign.test_determinism:_nondeterministic_run",
            )
        ],
    )
    with pytest.raises(CampaignConsistencyError, match="not deterministic"):
        fresh_executor(tmp_path, "nd", jobs=1, verify=1).run(camp)


def _nondeterministic_run():
    """Leaks process identity into the result: the pool worker and the
    in-process serial verifier necessarily disagree."""
    import os

    return {"pid": os.getpid()}
