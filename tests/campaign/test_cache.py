"""ResultCache: content addressing, hit/miss accounting, invalidation."""

from repro.campaign.cache import ResultCache, source_digest
from repro.campaign.spec import RunSpec


def make_cache(tmp_path, token="tok-a", enabled=True):
    return ResultCache(tmp_path / "cache", enabled=enabled, source_token=token)


def test_miss_then_hit_round_trip(tmp_path):
    cache = make_cache(tmp_path)
    spec = RunSpec("fig1")
    key = cache.key_for(spec)
    assert cache.get(key) is None
    cache.put(key, b'{"x":1}')
    assert cache.get(key) == b'{"x":1}'
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_ratio == 0.5


def test_key_changes_with_spec(tmp_path):
    cache = make_cache(tmp_path)
    base = cache.key_for(RunSpec("table3", params={"iterations": 4}))
    assert cache.key_for(RunSpec("table3", params={"iterations": 5})) != base
    assert cache.key_for(RunSpec("table3", params={"iterations": 4}, seed=1)) != base
    assert cache.key_for(RunSpec("table4", params={"iterations": 4})) != base
    # and is stable for an identical spec
    assert cache.key_for(RunSpec("table3", params={"iterations": 4})) == base


def test_key_changes_with_source_digest(tmp_path):
    spec = RunSpec("fig1")
    a = make_cache(tmp_path, token="digest-one").key_for(spec)
    b = make_cache(tmp_path, token="digest-two").key_for(spec)
    assert a != b


def test_source_change_invalidates_previous_entry(tmp_path):
    spec = RunSpec("fig1")
    old = make_cache(tmp_path, token="old-src")
    old.put(old.key_for(spec), b'{"old":true}')
    new = make_cache(tmp_path, token="new-src")
    assert new.get(new.key_for(spec)) is None  # recompute required
    # the old entry is still addressable under the old code version
    assert old.get(old.key_for(spec)) == b'{"old":true}'


def test_disabled_cache_never_hits(tmp_path):
    cache = make_cache(tmp_path, enabled=False)
    key = cache.key_for(RunSpec("fig1"))
    cache.put(key, b"data")
    assert cache.get(key) is None
    assert cache.hits == 0 and cache.misses == 1


def test_source_digest_is_memoized_and_stable():
    assert source_digest() == source_digest()
    assert len(source_digest()) == 64
