"""Stub experiment runners injected into campaigns by the tests.

Referenced by dotted path (``tests.campaign.stubs:<fn>``) in a
``RunSpec.runner`` override, so worker processes import them exactly
like real experiments.  ``flaky_run`` keeps its attempt count on disk
because retries cross process boundaries.
"""

from __future__ import annotations

import os
import time


def ok_run(seed: int = 0, value: float = 1.0, tag: str = "x") -> dict:
    """Deterministic success: a pure function of its arguments."""
    return {"seed": seed, "value": value * 2 + seed, "tag": tag}


def crash_run(seed: int = 0, message: str = "injected crash") -> dict:
    """Always raises (the executor must record the traceback)."""
    raise RuntimeError(f"{message} (seed={seed})")


def hang_run(seed: int = 0, forever: float = 3600.0) -> dict:
    """Blocks far past any test timeout (simulates a hung simulation)."""
    time.sleep(forever)
    return {"seed": seed}


def flaky_run(marker_dir: str, fails: int = 1, seed: int = 0) -> dict:
    """Fails the first ``fails`` attempts, then succeeds.

    Attempts are counted as marker files under ``marker_dir`` so the
    count survives the worker process boundary.
    """
    attempt = len(os.listdir(marker_dir)) + 1
    open(os.path.join(marker_dir, f"attempt-{attempt}-{os.getpid()}"), "w").close()
    if attempt <= fails:
        raise RuntimeError(f"flaky failure on attempt {attempt}")
    return {"seed": seed, "succeeded_on_attempt": attempt}
