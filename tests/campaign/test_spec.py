"""CampaignSpec/RunSpec: expansion, identity, invocation glue."""

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    RunSpec,
    builtin_campaign,
    canonical_json,
    expand_matrix,
    filter_kwargs,
    invoke,
    iter_experiment_results,
    result_from_payload,
    summarize_result,
)
from repro.experiments.common import ExperimentResult, TaskResult


def test_matrix_expansion_counts():
    camp = expand_matrix(
        "m",
        ["table3", "fig1"],
        seeds=[0, 1, 2],
        grid={"iterations": [2, 4]},
    )
    assert len(camp.runs) == 2 * 3 * 2
    # every cell unique
    assert len({r.run_id for r in camp.runs}) == len(camp.runs)


def test_run_id_stable_and_param_sensitive():
    a = RunSpec("table3", params={"iterations": 4}, seed=1)
    b = RunSpec("table3", params={"iterations": 4}, seed=1)
    c = RunSpec("table3", params={"iterations": 5}, seed=1)
    d = RunSpec("table3", params={"iterations": 4}, seed=2)
    assert a.run_id == b.run_id
    assert a.run_id != c.run_id
    assert a.run_id != d.run_id
    assert a.run_id.startswith("table3-")


def test_timeout_not_part_of_identity():
    a = RunSpec("fig1", timeout=None)
    b = RunSpec("fig1", timeout=30.0)
    assert a.digest == b.digest


def test_payload_round_trip():
    spec = RunSpec("x", params={"k": 3}, seed=7, runner="m:f", timeout=1.5)
    clone = RunSpec.from_payload(spec.to_payload())
    assert clone == spec


def test_canonical_json_is_order_independent():
    assert canonical_json({"b": 1, "a": [1.5, 2]}) == canonical_json(
        {"a": [1.5, 2], "b": 1}
    )


def test_filter_kwargs_drops_unknown():
    def fn(a, b=2):
        return a + b

    accepted, dropped = filter_kwargs(fn, {"a": 1, "b": 2, "zz": 3})
    assert accepted == {"a": 1, "b": 2}
    assert dropped == ["zz"]


def test_filter_kwargs_var_keyword_accepts_all():
    def fn(**kw):
        return kw

    accepted, dropped = filter_kwargs(fn, {"anything": 1})
    assert accepted == {"anything": 1} and dropped == []


def test_invoke_stub_by_dotted_path():
    spec = RunSpec(
        "stub", params={"value": 2.0}, seed=3,
        runner="tests.campaign.stubs:ok_run",
    )
    result, dropped = invoke(spec)
    assert result == {"seed": 3, "value": 7.0, "tag": "x"}
    assert dropped == []


def test_invoke_unknown_experiment_raises_keyerror():
    with pytest.raises(KeyError, match="unknown experiment"):
        invoke(RunSpec("nope"))


def test_builtin_campaigns_cover_registry():
    from repro.experiments.registry import all_ids

    full = builtin_campaign("paper-full")
    assert sorted(r.experiment for r in full.runs) == all_ids()
    quick = builtin_campaign("paper-quick")
    assert len(quick.runs) == len(full.runs)
    assert builtin_campaign("smoke").runs
    with pytest.raises(KeyError):
        builtin_campaign("nope")
    assert isinstance(full, CampaignSpec) and full.digest != quick.digest


def test_synth_presets_expand_the_feasible_grid():
    from repro.campaign.spec import (
        BUILTIN_CAMPAIGNS,
        QUICK_PARAMS,
        SWEEP_IMBALANCES,
        SWEEP_RANKS,
    )
    from repro.workloads.synth import unbalanced_sweep

    assert "synth-sweep" in BUILTIN_CAMPAIGNS
    assert "synth-convergence" in BUILTIN_CAMPAIGNS

    sweep = builtin_campaign("synth-sweep")
    grid = unbalanced_sweep(SWEEP_IMBALANCES, SWEEP_RANKS)
    assert len(sweep.runs) == len(grid)
    assert all(r.experiment == "synth_scatter" for r in sweep.runs)
    assert {(r.params["imbalance"], r.params["ranks"]) for r in sweep.runs} == {
        (c["imbalance"], c["ranks"]) for c in grid
    }

    conv = builtin_campaign("synth-convergence")
    assert all(r.experiment == "synth_convergence" for r in conv.runs)
    assert {r.params["ranks"] for r in conv.runs} == {16, 64}
    assert all(r.params["revert_at"] == 9 for r in conv.runs)

    # Every synth experiment has a quick-mode downscale, and the quick
    # params are actually accepted by the registered runner.
    from repro.experiments.registry import EXPERIMENTS

    for exp in (
        "synth_scatter",
        "synth_convergence",
        "synth_sweep",
        "synth_offload",
        "synth_local_bad",
    ):
        assert exp in QUICK_PARAMS
        accepted, dropped = filter_kwargs(EXPERIMENTS[exp], QUICK_PARAMS[exp])
        assert dropped == []
        assert accepted == QUICK_PARAMS[exp]


def test_summarize_and_restore_experiment_result():
    res = ExperimentResult(workload="w", scheduler="uniform", exec_time=3.25)
    res.tasks["P1"] = TaskResult(
        name="P1", pct_comp=95.0, pct_running=80.0, priority=None,
        running=1.0, waiting=0.5, ready=0.25,
    )
    res.priority_history["P1"] = [(0.0, 4), (1.0, 6)]
    payload = summarize_result({"uniform": res, "note": "hi"})
    # JSON-able end to end
    canonical_json(payload)
    restored = result_from_payload(payload)
    back = restored["uniform"]
    assert isinstance(back, ExperimentResult)
    assert back.exec_time == 3.25
    assert back.tasks["P1"].pct_comp == 95.0
    assert back.priority_history["P1"] == [(0.0, 4), (1.0, 6)]
    assert restored["note"] == "hi"
    assert len(list(iter_experiment_results(payload))) == 1
