"""CampaignExecutor: fault tolerance (crash, hang, retry) + caching."""

import json

import pytest

from repro.campaign import (
    CampaignExecutor,
    CampaignSpec,
    CampaignStore,
    ResultCache,
    RunSpec,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRYING,
)

STUBS = "tests.campaign.stubs"


def stub(fn, *, seed=0, timeout=None, **params):
    return RunSpec(
        experiment=f"stub-{fn}", params=params, seed=seed,
        runner=f"{STUBS}:{fn}", timeout=timeout,
    )


def make_executor(tmp_path, **kw):
    kw.setdefault("cache", ResultCache(tmp_path / "cache", source_token="t"))
    kw.setdefault("store", CampaignStore(tmp_path / "camp"))
    kw.setdefault("backoff", 0.0)
    kw.setdefault("verify", 0)
    return CampaignExecutor(**kw)


def test_ok_runs_and_artifacts(tmp_path):
    ex = make_executor(tmp_path, jobs=2, verify=1)
    camp = CampaignSpec("t", [stub("ok_run", seed=s) for s in (0, 1, 2)])
    result = ex.run(camp)
    assert len(result.ok) == 3 and not result.failed
    assert result.verified == 1
    # artifact trail: manifest + runs.jsonl + per-run payloads
    store = ex.store
    manifest = store.load_manifest()
    assert manifest["status"] == "complete"
    assert manifest["totals"]["ok"] == 3
    finals = store.final_records()
    assert len(finals) == 3
    for spec in camp.runs:
        payload = json.loads(store.read_payload(spec.run_id))
        assert payload["seed"] == spec.seed


def test_crash_is_recorded_not_fatal(tmp_path):
    ex = make_executor(tmp_path, jobs=2, retries=0)
    camp = CampaignSpec("t", [stub("crash_run"), stub("ok_run")])
    result = ex.run(camp)
    assert len(result.ok) == 1 and len(result.failed) == 1
    failed = result.failed[0]
    assert failed.status == STATUS_FAILED
    assert "injected crash" in failed.error
    assert "RuntimeError" in failed.error  # full traceback captured


def test_retry_then_succeed(tmp_path):
    marker = tmp_path / "markers"
    marker.mkdir()
    ex = make_executor(tmp_path, jobs=1, retries=2)
    camp = CampaignSpec(
        "t", [stub("flaky_run", marker_dir=str(marker), fails=1)]
    )
    result = ex.run(camp)
    rec = result.ok[0]
    assert rec.status == STATUS_OK
    assert rec.attempt == 2  # failed once, succeeded on the retry
    payload = json.loads(result.payloads[rec.run_id])
    assert payload["succeeded_on_attempt"] == 2
    # runs.jsonl keeps the RETRYING attempt record too
    attempts = [r.status for r in ex.store.records()]
    assert attempts == [STATUS_RETRYING, STATUS_OK]


def test_retries_exhausted_marks_failed(tmp_path):
    ex = make_executor(tmp_path, jobs=1, retries=1)
    camp = CampaignSpec("t", [stub("crash_run")])
    result = ex.run(camp)
    rec = result.failed[0]
    assert rec.attempt == 2  # initial + 1 retry
    assert [r.status for r in ex.store.records()] == [
        STATUS_RETRYING,
        STATUS_FAILED,
    ]


def test_timeout_marks_failed_and_campaign_survives(tmp_path):
    ex = make_executor(tmp_path, jobs=2, retries=0, timeout=0.5)
    camp = CampaignSpec(
        "t", [stub("hang_run"), stub("ok_run", timeout=30.0)]
    )
    result = ex.run(camp)
    assert len(result.ok) == 1
    hung = result.failed[0]
    assert "timeout" in hung.error
    assert hung.experiment == "stub-hang_run"


def test_all_slots_hung_pool_is_rebuilt(tmp_path):
    # Two hangs saturate the 2-worker pool; the executor must write
    # both slots off, rebuild, and still finish the remaining run.
    ex = make_executor(tmp_path, jobs=2, retries=0, timeout=0.4)
    camp = CampaignSpec(
        "t",
        [
            stub("hang_run", seed=1),
            stub("hang_run", seed=2),
            stub("ok_run", seed=3, timeout=30.0),
        ],
    )
    result = ex.run(camp)
    assert len(result.failed) == 2
    assert len(result.ok) == 1
    assert json.loads(result.payloads[camp.runs[2].run_id])["seed"] == 3


def test_second_campaign_run_is_all_cache_hits(tmp_path):
    camp = CampaignSpec("t", [stub("ok_run", seed=s) for s in (0, 1)])
    cold = make_executor(tmp_path, jobs=2).run(camp)
    assert cold.cache_hit_ratio == 0.0
    warm = make_executor(tmp_path, jobs=2).run(camp)
    assert warm.cache_hit_ratio == 1.0
    assert len(warm.ok) == 2
    # byte-identical payloads across the cache boundary
    for run_id, payload in cold.payloads.items():
        assert warm.payloads[run_id] == payload


def test_no_cache_recomputes(tmp_path):
    camp = CampaignSpec("t", [stub("ok_run")])
    make_executor(tmp_path, jobs=1).run(camp)
    ex = make_executor(
        tmp_path, jobs=1,
        cache=ResultCache(tmp_path / "cache", enabled=False, source_token="t"),
    )
    result = ex.run(camp)
    assert result.cache_hits == 0


def test_failed_run_exit_is_not_cached(tmp_path):
    camp = CampaignSpec("t", [stub("crash_run")])
    make_executor(tmp_path, jobs=1).run(camp)
    again = make_executor(tmp_path, jobs=1).run(camp)
    # a FAILED run must be retried on the next campaign, not cached
    assert again.cache_hits == 0
    assert len(again.failed) == 1


@pytest.mark.parametrize("jobs", [1, 3])
def test_event_stream_counts(tmp_path, jobs):
    events = []
    ex = make_executor(
        tmp_path, jobs=jobs,
        on_event=lambda kind, **info: events.append(kind),
    )
    camp = CampaignSpec("t", [stub("ok_run", seed=s) for s in range(4)])
    ex.run(camp)
    assert events.count("start") == 4
    assert events.count("ok") == 4


# ----------------------------------------------------------------------
# Pool-rebuild idempotency (PoolManager): the rebuild-after-timeout path
# must be safe when several drains share one executor concurrently.
# ----------------------------------------------------------------------

def test_pool_rebuild_is_idempotent_per_generation():
    import os

    from repro.campaign.executor import PoolManager

    pm = PoolManager(jobs=2)
    try:
        fut, gen = pm.submit(os.getpid)
        assert fut.result(timeout=30) > 0
        # First observer tears the pool down; the second (same token)
        # must be a no-op instead of killing the replacement.
        assert pm.rebuild(gen) is True
        assert pm.rebuild(gen) is False
        assert pm.rebuilds == 1
        # Write-offs against the retired generation are discarded.
        assert pm.write_off(gen) is False
        fut2, gen2 = pm.submit(os.getpid)
        assert gen2 == gen + 1
        assert fut2.result(timeout=30) > 0
        assert pm.rebuild(gen) is False  # still stale after replacement
        assert pm.rebuilds == 1
    finally:
        pm.shutdown()


def test_pool_rebuild_concurrent_observers_single_teardown():
    import os
    import threading

    from repro.campaign.executor import PoolManager

    pm = PoolManager(jobs=1)
    try:
        fut, gen = pm.submit(os.getpid)
        fut.result(timeout=30)
        outcomes = []
        barrier = threading.Barrier(6)

        def observer():
            barrier.wait()
            outcomes.append(pm.rebuild(gen))

        threads = [threading.Thread(target=observer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count(True) == 1, "exactly one teardown"
        assert pm.rebuilds == 1
    finally:
        pm.shutdown()


def test_write_off_threshold_scoped_to_current_pool():
    import os

    from repro.campaign.executor import PoolManager

    pm = PoolManager(jobs=2)
    try:
        _, gen = pm.submit(os.getpid)
        assert pm.write_off(gen) is False  # 1 of 2 slots
        assert pm.rebuild(gen) is True
        _, gen2 = pm.submit(os.getpid)
        # The fresh pool starts with a clean write-off ledger: one lost
        # slot must not tip it over the (stale counter + 1) threshold.
        assert pm.write_off(gen2) is False
        assert pm.write_off(gen2) is True
    finally:
        pm.shutdown()


def test_concurrent_campaigns_share_one_executor(tmp_path):
    # Two campaigns drain through ONE executor at once; campaign A's
    # hang forces a timeout write-off + pool rebuild mid-flight while
    # campaign B keeps submitting.  Before PoolManager both drains
    # could tear down/rebuild the same pool (duplicate executions of
    # resubmitted runs), and a run cancelled by the *other* drain's
    # teardown was silently dropped; now the rebuild is generation-
    # guarded, external cancellations resubmit attempt-free, and both
    # campaigns must finish with every non-hanging run OK exactly once.
    import threading

    ex = make_executor(
        tmp_path, jobs=2, retries=3, timeout=0.5, store=None,
    )
    camp_a = CampaignSpec(
        "a",
        [stub("hang_run", seed=1)]
        + [stub("ok_run", seed=s, timeout=30.0) for s in (2, 3)],
    )
    camp_b = CampaignSpec(
        "b", [stub("ok_run", seed=s, timeout=30.0) for s in (10, 11, 12)]
    )
    results = {}

    def drain(name, camp):
        results[name] = ex.run(camp)

    threads = [
        threading.Thread(target=drain, args=("a", camp_a)),
        threading.Thread(target=drain, args=("b", camp_b)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    a, b = results["a"], results["b"]
    assert len(a.ok) == 2 and len(a.failed) == 1  # only the hang fails
    assert "timeout" in a.failed[0].error
    assert len(b.ok) == 3 and not b.failed
    # every OK run produced exactly one authoritative payload
    for res, camp in ((a, camp_a), (b, camp_b)):
        for spec in camp.runs:
            if spec.experiment == "stub-ok_run":
                assert json.loads(res.payloads[spec.run_id])["seed"] == spec.seed
