"""CLI tests."""

import pytest

from repro.cli import main


def test_list_prints_ids(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table3" in out and "fig4" in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "table1" in capsys.readouterr().out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "table1_exact: True" in out


def test_run_fig1(capsys):
    assert main(["run", "fig1"]) == 0
    out = capsys.readouterr().out
    assert "hpc" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


@pytest.mark.slow
def test_report_quick(capsys):
    assert main(["report", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Tables I/II: exact" in out
    for exp in ("table3", "table4", "table5", "table6"):
        assert exp in out


def test_run_table3_with_iterations(capsys):
    assert main(["run", "table3", "--iterations", "4"]) == 0
    out = capsys.readouterr().out
    assert "Baseline 2.6.24" in out
    assert "vs. paper" in out
    assert "improvement uniform over cfs" in out


def test_cluster_both_placements(capsys):
    assert main(["cluster", "--nodes", "2", "--iterations", "1"]) == 0
    out = capsys.readouterr().out
    assert "2 nodes x 4 CPUs" in out
    assert "block" in out and "gang" in out
    assert "gang speedup over block" in out


def test_cluster_single_placement(capsys):
    assert main([
        "cluster", "--nodes", "2", "--iterations", "1",
        "--placement", "gang", "--ranks", "8",
    ]) == 0
    out = capsys.readouterr().out
    assert "8 ranks" in out
    assert "gang" in out and "speedup" not in out


def test_cluster_rejects_zero_ranks(capsys):
    assert main(["cluster", "--nodes", "2", "--ranks", "0"]) == 2
    assert capsys.readouterr().err


def test_synth_scatter_prints_comparison(capsys):
    assert main([
        "synth", "scatter", "--ranks", "4", "--iterations", "3",
        "--imbalance", "2.0",
    ]) == 0
    out = capsys.readouterr().out
    assert "imbalance" in out
    assert "cfs" in out and "adaptive" in out


def test_synth_scatter_json(capsys):
    import json

    assert main([
        "synth", "scatter", "--ranks", "4", "--iterations", "3",
        "--schedulers", "cfs", "--json",
    ]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "cfs" in data


def test_synth_convergence_prints_metrics(capsys):
    assert main([
        "synth", "convergence", "--ranks", "4", "--iterations", "8",
        "--revert-at", "6",
    ]) == 0
    out = capsys.readouterr().out
    assert "epochs" in out
    assert "uniform" in out and "adaptive" in out


def test_synth_sweep_prints_cells(capsys):
    assert main([
        "synth", "sweep", "--imbalances", "1.0,2.0", "--ranks", "4",
        "--iterations", "2", "--schedulers", "cfs",
    ]) == 0
    out = capsys.readouterr().out
    assert "I=1" in out and "I=2" in out and "N=4" in out


def test_synth_rejects_infeasible_imbalance(capsys):
    assert main([
        "synth", "scatter", "--ranks", "4", "--imbalance", "9.0",
    ]) == 2
    assert "infeasible" in capsys.readouterr().err


def test_validate_pool_flag(capsys):
    assert main([
        "validate", "--fuzz", "1", "--dt", "5e-5", "--pool", "synth",
    ]) == 0
    out = capsys.readouterr().out
    assert "pool=synth" in out
