"""Regression goldens: exact pins against behavioural drift.

The simulation is fully deterministic, so reduced-size experiment
results can be pinned to high precision across the full workload x
scheduler matrix.  A failure here means the *behaviour* of the
scheduler/model changed — which may be intentional (recalibration), in
which case regenerate the stored goldens with::

    pytest tests/test_goldens.py --update-goldens

and review the resulting ``tests/data/goldens.json`` diff together with
the benchmark shape assertions.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import btmz, metbench, metbenchvar, siesta

GOLDENS_PATH = Path(__file__).parent / "data" / "goldens.json"

#: workload -> (runner, reduced-size kwargs).
WORKLOADS = {
    "metbench": (metbench.run_one, {"iterations": 8}),
    "metbenchvar": (metbenchvar.run_one, {"iterations": 9, "k": 3}),
    "btmz": (btmz.run_one, {"iterations": 20}),
    "siesta": (siesta.run_one, {"scf_steps": 3}),
}

#: The paper's four scheduling configurations (§V): vanilla CFS, the
#: static per-rank assignment, uniform HPC priorities, and the adaptive
#: load-imbalance detector.
SCHEDULERS = ("cfs", "static", "uniform", "adaptive")

CASES = {
    f"{workload}_{scheduler}": (runner, scheduler, kwargs)
    for workload, (runner, kwargs) in WORKLOADS.items()
    for scheduler in SCHEDULERS
}


def _load_goldens() -> dict:
    if not GOLDENS_PATH.exists():
        return {}
    return json.loads(GOLDENS_PATH.read_text())


@pytest.mark.parametrize("key", sorted(CASES))
def test_golden(key, request):
    runner, scheduler, kwargs = CASES[key]
    result = runner(scheduler, keep_trace=False, **kwargs)
    if request.config.getoption("--update-goldens"):
        goldens = _load_goldens()
        goldens[key] = result.exec_time
        GOLDENS_PATH.write_text(
            json.dumps(dict(sorted(goldens.items())), indent=2) + "\n"
        )
        pytest.skip(f"golden updated: {key} = {result.exec_time!r}")
    goldens = _load_goldens()
    assert key in goldens, (
        f"no stored golden for {key}; generate it with "
        "pytest tests/test_goldens.py --update-goldens"
    )
    assert result.exec_time == pytest.approx(goldens[key], rel=1e-9), (
        f"{key}: behaviour changed "
        f"({result.exec_time!r} != {goldens[key]!r}); "
        "if intentional, regenerate the goldens (see module docstring)"
    )


def test_goldens_file_matches_the_case_matrix():
    """The stored file tracks the matrices exactly — no stale keys.

    The file is shared with the convergence goldens
    (``tests/test_convergence_goldens.py``), so the expected key set is
    the union of both case matrices.
    """
    from tests.test_convergence_goldens import CONVERGENCE_CASES

    goldens = _load_goldens()
    assert set(goldens) == set(CASES) | set(CONVERGENCE_CASES)
