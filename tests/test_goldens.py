"""Regression goldens: exact pins against behavioural drift.

The simulation is fully deterministic, so reduced-size experiment
results can be pinned to high precision.  A failure here means the
*behaviour* of the scheduler/model changed — which may be intentional
(recalibration), in which case regenerate the constants with::

    python -c "import tests.test_goldens as g; g.regenerate()"

and review the diff together with the benchmark shape assertions.
"""

import pytest

from repro.experiments import btmz, metbench, metbenchvar, siesta

#: (runner, scheduler, kwargs) per golden key.
CASES = {
    "metbench_cfs": (metbench.run_one, "cfs", {"iterations": 8}),
    "metbench_uniform": (metbench.run_one, "uniform", {"iterations": 8}),
    "metbenchvar_uniform": (
        metbenchvar.run_one, "uniform", {"iterations": 9, "k": 3},
    ),
    "btmz_cfs": (btmz.run_one, "cfs", {"iterations": 20}),
    "btmz_adaptive": (btmz.run_one, "adaptive", {"iterations": 20}),
    "siesta_cfs": (siesta.run_one, "cfs", {"scf_steps": 3}),
    "siesta_uniform": (siesta.run_one, "uniform", {"scf_steps": 3}),
}

GOLDEN_EXEC_TIMES = {
    "metbench_cfs": 14.538995952380949,
    "metbench_uniform": 13.115429400656815,
    "metbenchvar_uniform": 67.70751897192518,
    "btmz_cfs": 9.552087411729325,
    "btmz_adaptive": 8.120035184386776,
    "siesta_cfs": 13.299036859097328,
    "siesta_uniform": 12.51394375364701,
}


@pytest.mark.parametrize("key", sorted(CASES))
def test_golden(key):
    runner, scheduler, kwargs = CASES[key]
    result = runner(scheduler, keep_trace=False, **kwargs)
    assert result.exec_time == pytest.approx(
        GOLDEN_EXEC_TIMES[key], rel=1e-9
    ), (
        f"{key}: behaviour changed "
        f"({result.exec_time!r} != {GOLDEN_EXEC_TIMES[key]!r}); "
        "if intentional, regenerate the goldens (see module docstring)"
    )


def regenerate():  # pragma: no cover - maintenance helper
    print("GOLDEN_EXEC_TIMES = {")
    for key, (runner, scheduler, kwargs) in CASES.items():
        result = runner(scheduler, keep_trace=False, **kwargs)
        print(f"    {key!r}: {result.exec_time!r},")
    print("}")
