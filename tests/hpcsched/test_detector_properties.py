"""Property-based detector tests: random utilization streams must keep
the invariants no matter what the application does."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.common import build_kernel
from repro.hpcsched.detector import LoadImbalanceDetector
from repro.hpcsched.heuristics import (
    AdaptiveHeuristic,
    HybridHeuristic,
    UniformHeuristic,
)
from repro.hpcsched.mechanism import NullMechanism
from tests.conftest import pure_compute_program

HEURISTICS = [UniformHeuristic, AdaptiveHeuristic, HybridHeuristic]


def drive(kernel, detector, tasks, rounds):
    """Feed barrier-style rounds of (util per task) into the detector."""
    for round_utils in rounds:
        kernel.sim.after(1.0, lambda: None)
        kernel.sim.run()
        for task, util in zip(tasks, round_utils):
            task.sum_exec_runtime += util
            detector.on_wait_wakeup(task)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    heuristic_cls=st.sampled_from(HEURISTICS),
    n_tasks=st.integers(2, 5),
    rounds=st.lists(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=5, max_size=5),
        min_size=1,
        max_size=15,
    ),
)
def test_priorities_always_in_window_and_state_valid(
    heuristic_cls, n_tasks, rounds
):
    kernel = build_kernel()
    detector = LoadImbalanceDetector(kernel, heuristic_cls(), NullMechanism())
    tasks = []
    for i in range(n_tasks):
        t = kernel.create_task(f"w{i}", pure_compute_program(1.0))
        t.sleeping_on_wait = True
        detector.task_added(t)
        tasks.append(t)

    lo = kernel.tunables.get("hpcsched/min_prio")
    hi = kernel.tunables.get("hpcsched/max_prio")
    for round_utils in rounds:
        drive(kernel, detector, tasks, [round_utils[:n_tasks]])
        # invariant 1: priorities never escape the window
        assert all(lo <= t.hw_priority <= hi for t in tasks)
        # invariant 2: the state machine is in a legal state
        assert detector.state in ("adjusting", "observing", "frozen")
        # invariant 3: utilization stats stay in [0, 1]
        for stct in detector.stats.values():
            assert 0.0 <= stct.global_util <= 1.0 + 1e-9
            if stct.last_util is not None:
                assert 0.0 <= stct.last_util <= 1.0


@settings(max_examples=20, deadline=None)
@given(
    rounds=st.lists(
        st.sampled_from([(1.0, 0.2), (0.2, 1.0)]),
        min_size=4,
        max_size=30,
    )
)
def test_change_count_bounded_by_behaviour_changes(rounds):
    """Priority changes are bounded: at most a couple per behaviour
    flip, never one per iteration (no unbounded flapping)."""
    kernel = build_kernel()
    detector = LoadImbalanceDetector(kernel, UniformHeuristic(), NullMechanism())
    tasks = []
    for i in range(2):
        t = kernel.create_task(f"w{i}", pure_compute_program(1.0))
        t.sleeping_on_wait = True
        detector.task_added(t)
        tasks.append(t)

    flips = sum(1 for a, b in zip(rounds, rounds[1:]) if a != b)
    drive(kernel, detector, tasks, rounds)
    # 2 initial decisions + at most 2 per flip, plus slack for the
    # observation-round downward corrections
    assert detector.priority_changes <= 2 + 3 * (flips + 1)
