"""Priority-mechanism tests (the architecture-dependent layer)."""

import pytest

from repro.hpcsched.mechanism import NullMechanism, POWER5Mechanism
from repro.kernel import Kernel
from repro.power5.priorities import PriorityError
from tests.conftest import pure_compute_program


def test_power5_mechanism_sets_priority(quiet_kernel):
    k = quiet_kernel
    t = k.create_task("t", pure_compute_program(0.1))
    mech = POWER5Mechanism()
    mech.apply(k, t, 6)
    assert mech.read(t) == 6
    assert t.hw_priority == 6


def test_power5_mechanism_supervisor_range(quiet_kernel):
    k = quiet_kernel
    t = k.create_task("t", pure_compute_program(0.1))
    mech = POWER5Mechanism()
    for p in (1, 2, 3, 4, 5, 6):
        mech.apply(k, t, p)
    for p in (0, 7):
        with pytest.raises(PriorityError):
            mech.apply(k, t, p)


def test_power5_mechanism_affects_running_context(quiet_kernel):
    k = quiet_kernel
    t = k.spawn("t", pure_compute_program(1.0), cpu=0)
    k.sim.run(until=0.01)
    POWER5Mechanism().apply(k, t, 6)
    assert k.machine.context(0).priority == 6


def test_null_mechanism_records_without_effect(quiet_kernel):
    k = quiet_kernel
    t = k.spawn("t", pure_compute_program(1.0), cpu=0)
    k.sim.run(until=0.01)
    mech = NullMechanism()
    assert not mech.effective
    mech.apply(k, t, 6)
    assert t.hw_priority == 6
    # the hardware context was NOT touched
    assert int(k.machine.context(0).priority) == 4


def test_power5_mechanism_is_effective():
    assert POWER5Mechanism().effective
