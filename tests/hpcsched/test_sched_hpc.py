"""HPC scheduling class tests: registration, queueing, policy
semantics, latency benefits, detector wiring."""

import pytest

from repro.hpcsched import attach_hpcsched, UniformHeuristic
from repro.kernel import Compute, Kernel, SchedPolicy, Sleep
from repro.kernel.policies import TaskState
from repro.kernel.syscalls import SetScheduler
from tests.conftest import pure_compute_program


def hpc_kernel(quiet_kernel):
    cls = attach_hpcsched(quiet_kernel)
    return quiet_kernel, cls


def hpc_spawn(k, name, prog, cpu):
    return k.spawn(
        name, prog, cpu=cpu, cpus_allowed=[cpu], policy=SchedPolicy.HPC
    )


def test_attach_inserts_between_rt_and_fair(quiet_kernel):
    k, cls = hpc_kernel(quiet_kernel)
    names = [c.name for c in k.classes]
    assert names == ["rt", "hpc", "fair", "idle"]


def test_attach_twice_rejected(quiet_kernel):
    attach_hpcsched(quiet_kernel)
    with pytest.raises(ValueError):
        attach_hpcsched(quiet_kernel)


def test_register_before_unknown_class(quiet_kernel):
    from repro.hpcsched.sched_hpc import HPCSchedClass

    cls = HPCSchedClass(quiet_kernel)
    with pytest.raises(ValueError):
        quiet_kernel.register_class(cls, before="bogus")


def test_hpc_task_runs_and_exits(quiet_kernel):
    k, _ = hpc_kernel(quiet_kernel)
    t = hpc_spawn(k, "t", pure_compute_program(0.1), cpu=0)
    k.run()
    assert t.state == TaskState.EXITED


def test_hpc_beats_cfs_task(quiet_kernel):
    k, _ = hpc_kernel(quiet_kernel)
    normal = k.spawn("n", pure_compute_program(0.2), cpu=0, cpus_allowed=[0])
    hpc = hpc_spawn(k, "h", pure_compute_program(0.1), cpu=0)
    k.run()
    # the HPC task monopolizes the CPU until done
    assert hpc.sum_exec_runtime > 0
    assert k.latency_stats.for_task(hpc.pid).max < 1e-4


def test_rt_still_beats_hpc(quiet_kernel):
    k, _ = hpc_kernel(quiet_kernel)
    hpc = hpc_spawn(k, "h", pure_compute_program(0.1), cpu=0)
    rt = k.spawn(
        "rt", pure_compute_program(0.05), cpu=0, cpus_allowed=[0],
        policy=SchedPolicy.FIFO, rt_priority=10,
    )
    k.sim.run(until=0.001)
    assert k.rqs[0].current is rt


def test_hpc_wakeup_latency_near_zero_with_cfs_noise(quiet_kernel):
    """The §V-D latency claim: an HPC task waking past CFS tasks."""
    k, _ = hpc_kernel(quiet_kernel)

    def hog():
        while True:
            yield Compute(0.01)

    k.spawn("hog", hog(), cpu=0, cpus_allowed=[0], daemon=True)

    def blinker():
        for _ in range(10):
            yield Compute(0.001)
            yield Sleep(0.005)

    h = hpc_spawn(k, "h", blinker(), cpu=0)
    k.run()
    acc = k.latency_stats.for_task(h.pid)
    assert acc.count >= 10
    assert acc.max < 1e-4  # always preempts the CFS hog immediately


def test_rr_rotation_between_hpc_tasks(quiet_kernel):
    k, _ = hpc_kernel(quiet_kernel)
    k.tunables.set("hpcsched/rr_timeslice", 0.01)
    a = hpc_spawn(k, "a", pure_compute_program(0.06), cpu=0)
    b = hpc_spawn(k, "b", pure_compute_program(0.06), cpu=0)
    k.run(until=0.05)
    assert a.sum_exec_runtime > 0.01
    assert b.sum_exec_runtime > 0.01


def test_fifo_mode_runs_to_block(quiet_kernel):
    k, _ = hpc_kernel(quiet_kernel)
    k.tunables.set("hpcsched/policy_mode", "fifo")
    a = hpc_spawn(k, "a", pure_compute_program(0.06), cpu=0)
    b = hpc_spawn(k, "b", pure_compute_program(0.06), cpu=0)
    k.run(until=0.02)
    # FIFO: a runs to completion first, b starved meanwhile
    assert b.sum_exec_runtime == 0.0


def test_no_wakeup_preemption_within_hpc(quiet_kernel):
    k, _ = hpc_kernel(quiet_kernel)
    runner = hpc_spawn(k, "runner", pure_compute_program(1.0), cpu=0)

    def napper():
        yield Compute(0.001)
        yield Sleep(0.01)
        yield Compute(0.001)

    nap = hpc_spawn(k, "nap", napper(), cpu=0)
    k.run()
    acc = k.latency_stats.for_task(nap.pid)
    # waking mid-run of 'runner', it waited for the RR slice to expire
    # (no wakeup preemption inside the HPC class)
    assert acc.max > 0.01


def test_setscheduler_into_hpc_registers_with_detector(quiet_kernel):
    k, cls = hpc_kernel(quiet_kernel)

    def prog():
        yield SetScheduler(SchedPolicy.HPC)
        yield Compute(0.05)

    t = k.spawn("t", prog(), cpu=0)
    k.sim.run(until=0.001)
    assert t.pid in cls.detector.stats
    k.run()
    assert t.pid not in cls.detector.stats  # removed at exit


def test_dequeue_unqueued_rejected(quiet_kernel):
    k, cls = hpc_kernel(quiet_kernel)
    t = k.create_task("t", pure_compute_program(0.1), policy=SchedPolicy.HPC)
    with pytest.raises(ValueError):
        cls.dequeue_task(k.rqs[0], t)


def test_pull_candidates_order(quiet_kernel):
    k, cls = hpc_kernel(quiet_kernel)
    a = hpc_spawn(k, "a", pure_compute_program(0.1), cpu=0)
    b = k.spawn("b", pure_compute_program(0.1), cpu=0, policy=SchedPolicy.HPC)
    c = k.spawn("c", pure_compute_program(0.1), cpu=0, policy=SchedPolicy.HPC)
    rq = k.rqs[0]
    cands = cls.pull_candidates(rq)
    # back of the queue first
    assert [t.name for t in cands] == ["c", "b"] or [t.name for t in cands] == ["c", "b", "a"]
