"""Load Imbalance Detector: iteration stats and the stable-state
machine (adjusting -> observing -> frozen -> thaw)."""

import pytest

from repro.hpcsched.detector import HPCTaskStats, LoadImbalanceDetector
from repro.hpcsched.heuristics import UniformHeuristic
from repro.hpcsched.mechanism import NullMechanism
from repro.kernel import Kernel
from repro.kernel.policies import SchedPolicy
from tests.conftest import pure_compute_program


# ----------------------------------------------------------------------
# HPCTaskStats unit tests
# ----------------------------------------------------------------------
def test_close_iteration_computes_utilization():
    st = HPCTaskStats(pid=1)
    st.iter_start = 0.0
    st.run_snapshot = 0.0
    util = st.close_iteration(now=2.0, run_now=1.0)
    assert util == pytest.approx(0.5)
    assert st.last_util == pytest.approx(0.5)
    assert st.iterations == 1
    assert st.global_util == pytest.approx(0.5)


def test_global_util_weighted_by_duration():
    st = HPCTaskStats(pid=1)
    st.iter_start = 0.0
    st.close_iteration(now=1.0, run_now=1.0)  # util 1.0 over 1s
    st.close_iteration(now=4.0, run_now=1.0)  # util 0.0 over 3s
    assert st.global_util == pytest.approx(0.25)
    assert st.history == [1.0, 0.0]


def test_utilization_clamped_to_one():
    st = HPCTaskStats(pid=1)
    st.iter_start = 0.0
    util = st.close_iteration(now=1.0, run_now=2.0)  # run > wall (fp dust)
    assert util == 1.0


def test_global_util_clamped_consistently_with_iteration_util():
    """Regression: close_iteration clamped the per-iteration ratio but
    accumulated the raw run time, letting Ug = total_run/total_time
    exceed 1.0 under accounting jitter (run > wall)."""
    st = HPCTaskStats(pid=1)
    st.iter_start = 0.0
    st.close_iteration(now=1.0, run_now=2.0)  # jitter: tr > ti
    assert st.global_util <= 1.0
    assert st.total_run == pytest.approx(st.total_time)
    # last_tr is clamped too, so a history reset stays consistent.
    st.reset_history()
    assert st.global_util <= 1.0
    st.close_iteration(now=2.0, run_now=2.5)
    assert st.global_util <= 1.0


def test_zero_duration_iteration_ignored():
    st = HPCTaskStats(pid=1)
    st.iter_start = 5.0
    assert st.close_iteration(now=5.0, run_now=1.0) is None
    assert st.iterations == 0


def test_reset_history_keeps_last():
    st = HPCTaskStats(pid=1)
    st.iter_start = 0.0
    st.close_iteration(now=1.0, run_now=1.0)
    st.close_iteration(now=2.0, run_now=1.2)  # util 0.2
    st.reset_history()
    assert st.iterations == 1
    assert st.history == [pytest.approx(0.2)]
    assert st.global_util == pytest.approx(0.2)


def test_reset_history_before_first_iteration_noop():
    st = HPCTaskStats(pid=1)
    st.reset_history()
    assert st.iterations == 0


# ----------------------------------------------------------------------
# Detector state machine (driven synthetically)
# ----------------------------------------------------------------------
class _Env:
    """A detector on a quiet kernel with two synthetic HPC tasks.

    ``close`` closes one task's iteration at the *current* time;
    ``advance`` moves the shared clock.  A barrier-style round is
    ``advance(wall)`` followed by one ``close`` per task.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.detector = LoadImbalanceDetector(
            kernel, UniformHeuristic(), NullMechanism()
        )
        self.tasks = []
        for i in range(2):
            t = kernel.create_task(f"w{i}", pure_compute_program(1.0))
            t.sleeping_on_wait = True
            self.detector.task_added(t)
            self.tasks.append(t)

    def advance(self, wall):
        self.kernel.sim.after(wall, lambda: None)
        self.kernel.sim.run()

    def close(self, task, wall, run):
        """Advance the clock by ``wall`` and close ``task``'s iteration
        with ``run`` seconds of accumulated execution."""
        if wall:
            self.advance(wall)
        task.sum_exec_runtime += run
        self.detector.on_wait_wakeup(task)

    def round(self, runs, wall=1.0):
        """A barrier round: advance once, close every task."""
        self.advance(wall)
        for task, run in zip(self.tasks, runs):
            task.sum_exec_runtime += run
            self.detector.on_wait_wakeup(task)


def test_imbalanced_iteration_triggers_priorities(quiet_kernel):
    env = _Env(quiet_kernel)
    busy, idle = env.tasks
    env.round([0.99, 0.2])
    assert busy.hw_priority == 6
    assert idle.hw_priority == 4
    assert env.detector.priority_changes == 1


def test_short_wakeup_is_folded_into_iteration(quiet_kernel):
    env = _Env(quiet_kernel)
    busy, idle = env.tasks
    env.close(idle, wall=0.00005, run=0.0)  # below min_iter_time
    assert env.detector.stats[idle.pid].iterations == 0
    env.close(idle, wall=1.0, run=0.5)
    assert env.detector.stats[idle.pid].iterations == 1
    assert env.detector.stats[idle.pid].last_util == pytest.approx(
        0.5 / 1.00005, rel=1e-3
    )


def test_detector_freezes_after_quiet_round(quiet_kernel):
    env = _Env(quiet_kernel)
    # round 1: change (busy task -> 6)
    env.round([0.99, 0.2])
    assert env.detector.state == "observing"
    # round 2: observation only
    env.round([0.95, 0.93])
    assert env.detector.state == "frozen"
    assert env.detector.frozen


def test_frozen_holds_despite_high_utils(quiet_kernel):
    env = _Env(quiet_kernel)
    a, b = env.tasks
    env.round([0.99, 0.2])
    env.round([0.95, 0.93])
    changes_before = env.detector.priority_changes
    # both tasks now look "high utilization" — must NOT be promoted
    for _ in range(3):
        env.round([0.95, 0.93])
    assert env.detector.priority_changes == changes_before
    assert b.hw_priority == 4


def test_behaviour_change_thaws_and_rebalances(quiet_kernel):
    env = _Env(quiet_kernel)
    a, b = env.tasks
    env.round([0.99, 0.2])
    env.round([0.95, 0.93])
    assert env.detector.frozen
    # behaviour reverses: b is now the busy one, a mostly waits
    env.round([0.10, 0.99])
    assert not env.detector.frozen
    assert env.detector.behaviour_changes == 1
    env.round([0.10, 0.99])
    # history was reset: decisions reflect the new behaviour
    assert a.hw_priority == 4
    assert b.hw_priority == 6


def test_thaw_resets_history(quiet_kernel):
    env = _Env(quiet_kernel)
    a, b = env.tasks
    env.round([0.99, 0.2])
    env.round([0.95, 0.93])
    assert env.detector.frozen
    env.round([0.1, 0.9])
    st = env.detector.stats[a.pid]
    # reset kept only the revealing iteration (plus at most this round's)
    assert st.iterations <= 2
    assert st.global_util < 0.2


def test_small_fluctuations_do_not_thaw(quiet_kernel):
    env = _Env(quiet_kernel)
    env.round([0.99, 0.2])
    env.round([0.95, 0.90])
    assert env.detector.frozen
    env.round([0.92, 0.85])  # within rebalance_delta (12 pts)
    assert env.detector.frozen


def test_task_arrival_thaws_clears_refs_and_allows_refreeze(quiet_kernel):
    """Regression: task_added reset the state machine to adjusting but
    left ``_freeze_ref`` populated from the previous freeze, so the next
    frozen period compared against stale references.  Covers
    FROZEN -> task_added -> re-freeze."""
    env = _Env(quiet_kernel)
    env.round([0.99, 0.2])
    env.round([0.95, 0.93])
    assert env.detector.frozen
    assert env.detector._freeze_ref  # references exist while frozen

    # A third task joins the application: thaw via task arrival.
    t = env.kernel.create_task("w2", pure_compute_program(1.0))
    t.sleeping_on_wait = True
    env.detector.task_added(t)
    env.tasks.append(t)
    assert env.detector.state == "adjusting"
    assert env.detector._freeze_ref == {}  # stale references cleared

    # The detector re-freezes on the new membership with fresh refs.
    env.round([0.95, 0.93, 0.94])  # new task promoted -> observing
    env.round([0.95, 0.93, 0.94])  # quiet round -> frozen
    assert env.detector.frozen
    assert set(env.detector._freeze_ref) == {task.pid for task in env.tasks}


def test_task_removed_cleans_up(quiet_kernel):
    env = _Env(quiet_kernel)
    a, b = env.tasks
    env.detector.task_removed(a)
    assert a.pid not in env.detector.stats
    # a lone-task round still works
    env.close(b, wall=1.0, run=0.5)
    assert env.detector.stats[b.pid].iterations == 1


def test_task_added_resets_priority_to_base(quiet_kernel):
    k = quiet_kernel
    det = LoadImbalanceDetector(k, UniformHeuristic(), NullMechanism())
    t = k.create_task("t", pure_compute_program(1.0))
    t.hw_priority = 6
    det.task_added(t)
    assert t.hw_priority == 4  # min_prio


def test_unknown_task_wakeup_ignored(quiet_kernel):
    k = quiet_kernel
    det = LoadImbalanceDetector(k, UniformHeuristic(), NullMechanism())
    t = k.create_task("t", pure_compute_program(1.0))
    det.on_wait_wakeup(t)  # not registered: no crash
    assert det.priority_changes == 0


def test_application_balanced_helper(quiet_kernel):
    env = _Env(quiet_kernel)
    a, b = env.tasks
    assert not env.detector.application_balanced()
    env.round([0.95, 0.93])
    assert env.detector.application_balanced()
    env.round([0.95, 0.2])
    assert not env.detector.application_balanced()
