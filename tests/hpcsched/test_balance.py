"""HPC workload-balancer tests (paper §IV-A domain balancing)."""

import pytest

from repro.hpcsched import attach_hpcsched
from repro.hpcsched.balance import hpc_task_distribution, spread_hpc_tasks
from repro.kernel import SchedPolicy
from tests.conftest import pure_compute_program


def hpc_task(k, name, cpu):
    return k.spawn(
        name, pure_compute_program(1.0), cpu=cpu, policy=SchedPolicy.HPC
    )


def test_distribution_counts_runnable_hpc_only(quiet_kernel):
    k = quiet_kernel
    attach_hpcsched(k)
    hpc_task(k, "a", 0)
    k.spawn("n", pure_compute_program(1.0), cpu=0)  # CFS: not counted
    dist = hpc_task_distribution(k)
    assert dist == {0: 1, 1: 0, 2: 0, 3: 0}


def test_papers_example_one_vs_three(quiet_kernel):
    """Paper §IV-A: core0 holds 1 task, core1 holds 3 -> balance to
    2 per core domain."""
    k = quiet_kernel
    attach_hpcsched(k)
    hpc_task(k, "a", 0)
    for i, cpu in enumerate((2, 2, 3)):
        hpc_task(k, f"b{i}", cpu)
    moves = spread_hpc_tasks(k)
    dist = hpc_task_distribution(k)
    core0 = dist[0] + dist[1]
    core1 = dist[2] + dist[3]
    assert moves >= 1
    assert abs(core0 - core1) <= 1
    # context level balanced too
    assert all(v <= 1 for v in dist.values())


def test_already_balanced_makes_no_moves(quiet_kernel):
    k = quiet_kernel
    attach_hpcsched(k)
    for i in range(4):
        hpc_task(k, f"t{i}", i)
    assert spread_hpc_tasks(k) == 0


def test_two_stacked_tasks_spread_to_distinct_cores(quiet_kernel):
    """Two tasks stacked on one context spread out — preferring the
    idle core over the busy one's SMT sibling (no resource sharing)."""
    k = quiet_kernel
    attach_hpcsched(k)
    hpc_task(k, "a", 0)
    hpc_task(k, "b", 0)
    spread_hpc_tasks(k)
    dist = hpc_task_distribution(k)
    assert sorted(dist.values()) == [0, 0, 1, 1]
    core0 = dist[0] + dist[1]
    core1 = dist[2] + dist[3]
    assert core0 == core1 == 1


def test_within_core_spread_when_both_cores_busy(quiet_kernel):
    """With each core already owning a task, a second task stacked on
    cpu0 moves to the free sibling context."""
    k = quiet_kernel
    attach_hpcsched(k)
    hpc_task(k, "a", 0)
    hpc_task(k, "b", 0)
    hpc_task(k, "c", 2)
    hpc_task(k, "d", 3)
    spread_hpc_tasks(k)
    dist = hpc_task_distribution(k)
    assert dist == {0: 1, 1: 1, 2: 1, 3: 1}


def test_running_tasks_are_not_migrated(quiet_kernel):
    k = quiet_kernel
    attach_hpcsched(k)
    a = hpc_task(k, "a", 0)
    k.sim.run(until=0.001)  # a now RUNNING on cpu0
    b = hpc_task(k, "b", 0)  # queued behind it
    spread_hpc_tasks(k)
    assert a.cpu == 0  # the running task stayed
    assert b.cpu != 0  # the queued one moved


def test_respects_max_moves(quiet_kernel):
    k = quiet_kernel
    attach_hpcsched(k)
    for i in range(6):
        hpc_task(k, f"t{i}", 0)
    moves = spread_hpc_tasks(k, max_moves=1)
    assert moves == 1
