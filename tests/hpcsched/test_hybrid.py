"""Hybrid heuristic tests (the future-work extension)."""

import pytest

from repro.hpcsched.detector import LoadImbalanceDetector
from repro.hpcsched.heuristics import AdaptiveHeuristic, HybridHeuristic
from repro.hpcsched.mechanism import NullMechanism
from tests.conftest import pure_compute_program
from tests.hpcsched.test_heuristics import make_stats


def make_detector(kernel, heuristic):
    return LoadImbalanceDetector(kernel, heuristic, NullMechanism())


@pytest.fixture
def task(quiet_kernel):
    return quiet_kernel.create_task("t", pure_compute_program(1.0))


def test_window_validation():
    with pytest.raises(ValueError):
        HybridHeuristic(window=1)


def test_first_iteration_fast_path(quiet_kernel, task):
    det = make_detector(quiet_kernel, HybridHeuristic())
    assert det.heuristic.decide(det, task, make_stats([0.95])) == 6
    assert det.heuristic.decide(det, task, make_stats([0.2])) == 4


def test_consistent_signal_reacts_immediately(quiet_kernel, task):
    """Two agreeing samples at a new level = a real behaviour change."""
    det = make_detector(quiet_kernel, HybridHeuristic())
    st = make_stats([0.95, 0.95, 0.2, 0.25])
    assert det.heuristic.decide(det, task, st) == 4


def test_single_noise_blip_is_damped(quiet_kernel, task):
    """One outlier iteration must not flip the priority — the exact
    over-reaction Adaptive shows on MetBench (paper Fig. 3d)."""
    hybrid = make_detector(quiet_kernel, HybridHeuristic())
    adaptive = make_detector(quiet_kernel, AdaptiveHeuristic())
    st = make_stats([0.95, 0.95, 0.95, 0.30])  # blip at the end
    task.hw_priority = 6
    # Adaptive over-reacts (0.9*0.30 + 0.1*0.95 = 0.365 -> MIN)...
    assert adaptive.heuristic.decide(adaptive, task, st) == 4
    # ...Hybrid holds via the median (0.95).
    assert hybrid.heuristic.decide(hybrid, task, st) is None or (
        hybrid.heuristic.decide(hybrid, task, st) == 6
    )


def test_recovers_after_blip(quiet_kernel, task):
    det = make_detector(quiet_kernel, HybridHeuristic())
    st = make_stats([0.95, 0.30, 0.95, 0.95])
    assert det.heuristic.decide(det, task, st) == 6


def test_steady_middle_band_keeps(quiet_kernel, task):
    det = make_detector(quiet_kernel, HybridHeuristic())
    st = make_stats([0.75, 0.75, 0.75])
    assert det.heuristic.decide(det, task, st) is None


def test_empty_history_returns_none(quiet_kernel, task):
    from repro.hpcsched.detector import HPCTaskStats

    det = make_detector(quiet_kernel, HybridHeuristic())
    assert det.heuristic.decide(det, task, HPCTaskStats(pid=1)) is None


def test_hybrid_name():
    assert HybridHeuristic().name == "hybrid"


def test_hybrid_is_a_runnable_scheduler_config():
    from repro.experiments.common import run_experiment
    from repro.workloads import MetBench

    base = run_experiment(MetBench(iterations=6), "cfs", keep_trace=False)
    hyb = run_experiment(MetBench(iterations=6), "hybrid", keep_trace=False)
    assert hyb.improvement_over(base) > 8.0


def test_hybrid_matches_adaptive_on_dynamic_behaviour():
    """On MetBenchVar the hybrid re-balances like Adaptive (within one
    iteration of lag) — the future-work goal."""
    from repro.experiments.common import run_experiment
    from repro.workloads import MetBenchVar

    base = run_experiment(MetBenchVar(iterations=9, k=3), "cfs", keep_trace=False)
    ada = run_experiment(MetBenchVar(iterations=9, k=3), "adaptive", keep_trace=False)
    hyb = run_experiment(MetBenchVar(iterations=9, k=3), "hybrid", keep_trace=False)
    assert hyb.exec_time == pytest.approx(ada.exec_time, rel=0.06)
