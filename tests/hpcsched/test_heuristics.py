"""Heuristic decision-rule tests (bands, weighting, step mode)."""

import pytest

from repro.hpcsched.detector import HPCTaskStats, LoadImbalanceDetector
from repro.hpcsched.heuristics import (
    AdaptiveHeuristic,
    StaticPriorities,
    UniformHeuristic,
)
from repro.hpcsched.mechanism import NullMechanism
from tests.conftest import pure_compute_program


def make_detector(kernel, heuristic):
    return LoadImbalanceDetector(kernel, heuristic, NullMechanism())


def make_stats(history, durations=None):
    """Build stats from a list of per-iteration utilizations."""
    st = HPCTaskStats(pid=1)
    durations = durations or [1.0] * len(history)
    now = 0.0
    run = 0.0
    st.iter_start = 0.0
    for util, dur in zip(history, durations):
        now += dur
        run += util * dur
        st.close_iteration(now, run)
    return st


@pytest.fixture
def task(quiet_kernel):
    return quiet_kernel.create_task("t", pure_compute_program(1.0))


def test_uniform_high_band_targets_max(quiet_kernel, task):
    det = make_detector(quiet_kernel, UniformHeuristic())
    st = make_stats([0.95])
    assert det.heuristic.decide(det, task, st) == 6


def test_uniform_low_band_targets_min(quiet_kernel, task):
    det = make_detector(quiet_kernel, UniformHeuristic())
    st = make_stats([0.30])
    assert det.heuristic.decide(det, task, st) == 4


def test_uniform_middle_band_keeps(quiet_kernel, task):
    det = make_detector(quiet_kernel, UniformHeuristic())
    st = make_stats([0.75])
    assert det.heuristic.decide(det, task, st) is None


def test_uniform_uses_global_history(quiet_kernel, task):
    """A single busy iteration after a long idle history must not
    promote the task (global utilization still low)."""
    det = make_detector(quiet_kernel, UniformHeuristic())
    st = make_stats([0.2] * 10 + [1.0])
    assert st.global_util < 0.3
    assert det.heuristic.decide(det, task, st) == 4


def test_uniform_band_boundaries(quiet_kernel, task):
    det = make_detector(quiet_kernel, UniformHeuristic())
    assert det.heuristic.decide(det, task, make_stats([0.85])) == 6
    assert det.heuristic.decide(det, task, make_stats([0.65])) == 4
    assert det.heuristic.decide(det, task, make_stats([0.6501])) is None


def test_adaptive_weights_recent_history(quiet_kernel, task):
    """With L=0.9 a single busy iteration flips the decision."""
    det = make_detector(quiet_kernel, AdaptiveHeuristic())
    st = make_stats([0.2] * 10 + [1.0])
    # 0.9*1.0 + 0.1*0.2 = 0.92 >= HIGH
    assert det.heuristic.decide(det, task, st) == 6


def test_adaptive_g1_behaves_like_uniform_mean(quiet_kernel, task):
    quiet_kernel.tunables.set("hpcsched/adaptive_g", 1.0)
    quiet_kernel.tunables.set("hpcsched/adaptive_l", 0.0)
    det = make_detector(quiet_kernel, AdaptiveHeuristic())
    st = make_stats([0.2] * 10 + [1.0])
    assert det.heuristic.decide(det, task, st) == 4


def test_adaptive_first_iteration_uses_last(quiet_kernel, task):
    det = make_detector(quiet_kernel, AdaptiveHeuristic())
    st = make_stats([0.95])
    assert det.heuristic.decide(det, task, st) == 6


def test_step_mode_moves_one_level(quiet_kernel, task):
    quiet_kernel.tunables.set("hpcsched/prio_step_mode", "step")
    det = make_detector(quiet_kernel, UniformHeuristic())
    st = make_stats([0.95])
    task.hw_priority = 4
    assert det.heuristic.decide(det, task, st) == 5


def test_custom_bands_respected(quiet_kernel, task):
    quiet_kernel.tunables.set("hpcsched/high_util", 50.0)
    det = make_detector(quiet_kernel, UniformHeuristic())
    st = make_stats([0.6])
    assert det.heuristic.decide(det, task, st) == 6


def test_custom_priority_range(quiet_kernel, task):
    quiet_kernel.tunables.set("hpcsched/max_prio", 5)
    quiet_kernel.tunables.set("hpcsched/min_prio", 3)
    det = make_detector(quiet_kernel, UniformHeuristic())
    assert det.heuristic.decide(det, task, make_stats([0.95])) == 5
    assert det.heuristic.decide(det, task, make_stats([0.2])) == 3


def test_static_priorities_by_name(quiet_kernel):
    det = make_detector(quiet_kernel, StaticPriorities({"t": 6}))
    t = quiet_kernel.create_task("t", pure_compute_program(1.0))
    other = quiet_kernel.create_task("x", pure_compute_program(1.0))
    st = make_stats([0.5])
    assert det.heuristic.decide(det, t, st) == 6
    assert det.heuristic.decide(det, other, st) is None


def test_heuristic_names():
    assert UniformHeuristic().name == "uniform"
    assert AdaptiveHeuristic().name == "adaptive"
    assert StaticPriorities({}).name == "static"
