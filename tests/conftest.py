"""Shared fixtures: kernels, simple task programs, workload helpers."""

from __future__ import annotations

import pytest

from repro.experiments.common import build_kernel
from repro.kernel.core_sched import Kernel
from repro.kernel.syscalls import Compute, Sleep
from repro.power5.machine import Machine, MachineTopology
from repro.power5.perfmodel import CPU_BOUND, TableDrivenModel
from repro.trace.collector import TraceCollector


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/data/goldens.json from the current behaviour "
        "instead of asserting against it",
    )


@pytest.fixture
def kernel() -> Kernel:
    """A kernel on the paper's machine with tracing enabled."""
    return build_kernel()


@pytest.fixture
def quiet_kernel() -> Kernel:
    """A kernel without tracing (cheaper)."""
    machine = Machine(MachineTopology(), TableDrivenModel())
    return Kernel(machine=machine)


def compute_sleep_program(iterations: int, work: float, pause: float = 0.01):
    """A task that alternates compute and sleep phases."""

    def prog():
        for _ in range(iterations):
            yield Compute(work)
            yield Sleep(pause)

    return prog()


def pure_compute_program(work: float):
    def prog():
        yield Compute(work)

    return prog()


@pytest.fixture
def make_compute_task(kernel):
    """Factory: spawn a compute/sleep task on the traced kernel."""

    def _make(name="t", iterations=1, work=0.1, pause=0.01, cpu=None, **kw):
        return kernel.spawn(
            name,
            compute_sleep_program(iterations, work, pause),
            cpu=cpu,
            perf_profile=kw.pop("perf_profile", CPU_BOUND),
            **kw,
        )

    return _make
