"""Convergence-time regression goldens (Uniform vs Adaptive).

Pins the *reaction speed* of the two dynamic heuristics on the
``synthetic_convergence`` step-change probe at 16 and 64 ranks: epochs
and simulated seconds until the detector's measured imbalance recovers
the pre-step band, plus the post-reversal re-convergence.  Stored in
the same ``tests/data/goldens.json`` file and regenerated through the
same flow as the exec-time goldens::

    pytest tests/test_convergence_goldens.py --update-goldens

The paper's claim (§V-C) is that the balancer needs "one or two
iterations" to re-balance after a behaviour change; the acceptance
tests at the bottom assert that bound directly, independent of the
pinned values.
"""

import json
from functools import lru_cache
from pathlib import Path

import pytest

from repro.experiments.synth import run_synth_convergence

GOLDENS_PATH = Path(__file__).parent / "data" / "goldens.json"

RANKS = (16, 64)
SCHEDULERS = ("uniform", "adaptive")

#: Probe shape shared by every case: 12 iterations, step at 6 (the
#: default midpoint), reversal at 9.
PROBE = {"iterations": 12, "revert_at": 9}

CONVERGENCE_CASES = {
    f"synthetic_convergence_{ranks}_{scheduler}": (ranks, scheduler)
    for ranks in RANKS
    for scheduler in SCHEDULERS
}


@lru_cache(maxsize=None)
def _run(ranks: int, scheduler: str) -> dict:
    """One probe run, reduced to the JSON-able golden payload."""
    out = run_synth_convergence(ranks=ranks, schedulers=(scheduler,), **PROBE)
    entry = out[scheduler]
    conv, reconv = entry["convergence"], entry["reconvergence"]
    return {
        "exec_time": entry["result"].exec_time,
        "eps": conv["eps"],
        "converged": conv["converged"],
        "epochs": conv["epochs"],
        "sim_time": conv["sim_time"],
        "residual_spread": conv["residual_spread"],
        "reconverged": reconv["converged"],
        "re_epochs": reconv["epochs"],
    }


def _load_goldens() -> dict:
    if not GOLDENS_PATH.exists():
        return {}
    return json.loads(GOLDENS_PATH.read_text())


@pytest.mark.parametrize("key", sorted(CONVERGENCE_CASES))
def test_convergence_golden(key, request):
    ranks, scheduler = CONVERGENCE_CASES[key]
    payload = _run(ranks, scheduler)
    if request.config.getoption("--update-goldens"):
        goldens = _load_goldens()
        goldens[key] = payload
        GOLDENS_PATH.write_text(
            json.dumps(dict(sorted(goldens.items())), indent=2) + "\n"
        )
        pytest.skip(f"golden updated: {key} = {payload!r}")
    goldens = _load_goldens()
    assert key in goldens, (
        f"no stored golden for {key}; generate it with "
        "pytest tests/test_convergence_goldens.py --update-goldens"
    )
    stored = goldens[key]
    assert set(payload) == set(stored)
    for field, value in payload.items():
        if isinstance(value, float):
            assert value == pytest.approx(stored[field], rel=1e-9), (
                f"{key}.{field}: behaviour changed "
                f"({value!r} != {stored[field]!r}); if intentional, "
                "regenerate the goldens (see module docstring)"
            )
        else:
            assert value == stored[field], (
                f"{key}.{field}: behaviour changed "
                f"({value!r} != {stored[field]!r})"
            )


# ----------------------------------------------------------------------
# Acceptance bounds, independent of the pinned values.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("ranks", RANKS)
def test_both_heuristics_converge_and_reconverge(ranks):
    for scheduler in SCHEDULERS:
        payload = _run(ranks, scheduler)
        assert payload["converged"], (ranks, scheduler)
        assert payload["reconverged"], (ranks, scheduler)


def test_adaptive_is_at_least_as_fast_as_uniform_at_scale():
    """ISSUE acceptance: at 64 ranks the Adaptive heuristic converges
    at least as fast (in epochs) as Uniform."""
    assert _run(64, "adaptive")["epochs"] <= _run(64, "uniform")["epochs"]


@pytest.mark.parametrize("ranks", RANKS)
def test_adaptive_meets_the_paper_epoch_bound(ranks):
    """§V-C: re-balancing takes "one or two iterations".  The first
    post-step epoch merely *reveals* the new distribution, so the
    paper-consistent bound is reveal + two adjustment epochs."""
    payload = _run(ranks, "adaptive")
    assert payload["epochs"] <= 3
    assert payload["re_epochs"] <= 3
