"""Bit-determinism: identical configurations produce identical runs.

The whole reproduction strategy depends on it: goldens, calibration and
the paper-shape assertions are only meaningful if the simulation is a
pure function of its inputs.
"""

import pytest

from repro.experiments.common import run_experiment
from repro.workloads.metbench import MetBench
from repro.workloads.siesta import Siesta


def _fingerprint(res):
    return (
        res.exec_time,
        tuple(sorted((n, t.pct_comp, t.running) for n, t in res.tasks.items())),
        res.priority_changes,
        tuple(sorted((n, tuple(h)) for n, h in res.priority_history.items())),
    )


@pytest.mark.parametrize("scheduler", ["cfs", "uniform", "adaptive"])
def test_metbench_runs_are_bit_identical(scheduler):
    a = run_experiment(MetBench(iterations=5), scheduler, keep_trace=True)
    b = run_experiment(MetBench(iterations=5), scheduler, keep_trace=True)
    assert _fingerprint(a) == _fingerprint(b)


def test_siesta_randomness_is_seed_determined():
    a = run_experiment(Siesta(scf_steps=2, seed=1), "cfs", keep_trace=False)
    b = run_experiment(Siesta(scf_steps=2, seed=1), "cfs", keep_trace=False)
    c = run_experiment(Siesta(scf_steps=2, seed=2), "cfs", keep_trace=False)
    assert a.exec_time == b.exec_time
    assert a.exec_time != c.exec_time


def test_event_counts_identical_across_runs():
    from repro.experiments.common import build_kernel
    from repro.workloads.base import launch_workload

    counts = []
    for _ in range(2):
        kernel = build_kernel()
        launch_workload(kernel, MetBench(iterations=3))
        kernel.run()
        counts.append(kernel.sim.events_processed)
    assert counts[0] == counts[1]
