"""Cluster simulation tests."""

import pytest

from repro.cluster import Cluster, InterconnectModel
from repro.cluster.experiment import run_cluster
from repro.cluster.gang import block_placement
from repro.hpcsched import UniformHeuristic
from repro.mpi.process import MPIRank


def test_nodes_share_one_clock():
    c = Cluster(n_nodes=3)
    assert all(n.kernel.sim is c.sim for n in c.nodes)
    assert len(c.nodes) == 3
    assert c.cpus_per_node == 4


def test_each_node_gets_its_own_hpcsched():
    c = Cluster(n_nodes=2)
    assert c.nodes[0].hpc_class is not None
    assert c.nodes[0].hpc_class is not c.nodes[1].hpc_class


def test_no_hpc_when_factory_none():
    c = Cluster(n_nodes=2, heuristic_factory=None)
    assert all(n.hpc_class is None for n in c.nodes)
    assert not c.use_hpc


def test_inter_node_messages_cost_more():
    c = Cluster(n_nodes=2)
    c._rank_node = {0: 0, 1: 0, 2: 1}
    intra = c._route_delay(0, 1, 1024)
    inter = c._route_delay(0, 2, 1024)
    assert inter > intra


def test_cross_node_application_completes():
    c = Cluster(n_nodes=2, heuristic_factory=None)
    log = []

    def ping(mpi: MPIRank):
        def prog():
            yield mpi.compute(0.01)
            yield mpi.send(1, tag=0)
            yield mpi.recv(1, tag=1)
            log.append("ping-done")

        return prog()

    def pong(mpi: MPIRank):
        def prog():
            yield mpi.recv(0, tag=0)
            yield mpi.compute(0.01)
            yield mpi.send(0, tag=1)
            log.append("pong-done")

        return prog()

    placement = block_placement(2, 2, 1)  # rank0 -> node0, rank1 -> node1
    # widen to the real cpus_per_node mapping
    placement.slots[1] = type(placement.slots[1])(1, 0)
    c.launch([ping, pong], placement)
    c.run()
    assert sorted(log) == ["ping-done", "pong-done"]


def test_launch_requires_full_placement():
    c = Cluster(n_nodes=1, heuristic_factory=None)
    placement = block_placement(1, 1, 4)
    with pytest.raises(ValueError):
        c.launch([lambda m: iter(()), lambda m: iter(())], placement)


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        run_cluster("random")


@pytest.mark.slow
def test_gang_beats_block_and_hpc_compounds():
    """The §VI future-work result: gang placement fixes what the local
    scheduler cannot (node imbalance, heavy-heavy pairs); the local
    HPCSched then absorbs the remaining intra-core imbalance."""
    block_plain = run_cluster("block", iterations=4, use_hpc=False)
    block_hpc = run_cluster("block", iterations=4, use_hpc=True)
    gang_plain = run_cluster("gang", iterations=4, use_hpc=False)
    gang_hpc = run_cluster("gang", iterations=4, use_hpc=True)

    # gang placement is the big lever
    assert gang_plain.exec_time < 0.7 * block_plain.exec_time
    # HPCSched cannot rescue heavy-heavy pairings...
    assert block_hpc.exec_time == pytest.approx(block_plain.exec_time, rel=0.02)
    # ...but compounds with gang placement
    assert gang_hpc.exec_time < gang_plain.exec_time


def _barrier_workers(n_ranks, work=0.01, iterations=2):
    def worker():
        def factory(mpi: MPIRank):
            def prog():
                for _ in range(iterations):
                    yield mpi.compute(work)
                    yield mpi.barrier()

            return prog()

        return factory

    return [worker() for _ in range(n_ranks)]


def test_live_total_tracks_all_nodes():
    """The cluster's O(1) aggregate live counter mirrors the per-node
    kernels through launch and run-to-completion."""
    c = Cluster(n_nodes=2, heuristic_factory=None)
    assert c._live_total == 0
    ranks = 2 * c.cpus_per_node
    c.launch(
        _barrier_workers(ranks),
        block_placement(ranks, 2, c.cpus_per_node),
    )
    assert c._live_total == ranks
    assert c._live_total == sum(n.kernel.live_tasks for n in c.nodes)
    c.run()
    assert c._live_total == 0
    assert all(n.kernel.live_tasks == 0 for n in c.nodes)


def test_cluster_tracing_and_pmu_opt_in():
    """Per-node tracing and PMU attribution are off by default at
    cluster scale and opt back in via the constructor."""
    off = Cluster(n_nodes=2, heuristic_factory=None)
    assert all(n.kernel.trace is None for n in off.nodes)
    assert all(not n.kernel.pmu_enabled for n in off.nodes)
    on = Cluster(
        n_nodes=2,
        heuristic_factory=None,
        collect_traces=True,
        collect_pmu=True,
    )
    assert all(n.kernel.trace is not None for n in on.nodes)
    assert all(n.kernel.pmu_enabled for n in on.nodes)
    ranks = 2 * on.cpus_per_node
    on.launch(
        _barrier_workers(ranks),
        block_placement(ranks, 2, on.cpus_per_node),
    )
    on.run()
    assert all(len(n.kernel.trace.events) > 0 for n in on.nodes)


def test_tracing_choice_does_not_change_schedule():
    """Tracing/PMU collection is pure observability: the simulated
    execution is identical with and without it."""
    ends = []
    for flags in ({}, {"collect_traces": True, "collect_pmu": True}):
        c = Cluster(n_nodes=2, heuristic_factory=None, **flags)
        ranks = 2 * c.cpus_per_node
        c.launch(
            _barrier_workers(ranks),
            block_placement(ranks, 2, c.cpus_per_node),
        )
        ends.append((c.run(), c.sim.events_processed))
    assert ends[0] == ends[1]
