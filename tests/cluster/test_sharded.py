"""Sharded PDES cluster runner: parity, determinism edges, planning,
validation, and the ``--shards`` / ``--json`` CLI paths."""

import json

import pytest

from repro.cluster import Cluster, InterconnectModel
from repro.cluster.experiment import (
    ladder_loads,
    run_cluster,
    run_cluster_sharded,
)
from repro.cluster.gang import block_placement
from repro.cluster.sharded import plan_shards, run_sharded
from repro.cli import main
from repro.mpi.messages import LatencyModel
from repro.mpi.process import MPIRank
from repro.simcore.engine import Simulator
from repro.validate import run_parity_suite


# ----------------------------------------------------------------------
# Parity: the tentpole invariant
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ["block", "gang"])
def test_parity_small_cluster_bit_identical(strategy):
    kwargs = dict(loads=ladder_loads(16), iterations=2, n_nodes=4)
    serial = run_cluster(strategy, **kwargs)
    sharded = run_cluster_sharded(strategy, shards=2, workers="inline", **kwargs)
    assert sharded.rank_exit == serial.rank_exit
    assert sharded.exec_time == serial.exec_time
    assert sharded.messages_sent == serial.messages_sent
    assert sharded.messages_delivered == serial.messages_delivered
    assert sharded.shards == 2
    assert sharded.windows > 0


def test_parity_without_hpcsched():
    kwargs = dict(loads=ladder_loads(8), iterations=1, n_nodes=2, use_hpc=False)
    serial = run_cluster("block", **kwargs)
    sharded = run_cluster_sharded("block", shards=2, workers="inline", **kwargs)
    assert sharded.rank_exit == serial.rank_exit


def test_one_shard_is_byte_identical_to_serial():
    """K=1 takes the direct path: not just the same completion times but
    the exact same event stream (no window machinery; both sides run the
    same kernel-level fast-forward, so they elide identically)."""
    kwargs = dict(loads=ladder_loads(8), iterations=2, n_nodes=2)
    serial = run_cluster("block", **kwargs)
    sharded = run_cluster_sharded("block", shards=1, workers="inline", **kwargs)
    assert sharded.rank_exit == serial.rank_exit
    assert sharded.events == serial.events
    assert sharded.windows == 0


def test_sharded_run_is_deterministic():
    kwargs = dict(loads=ladder_loads(16), iterations=2, n_nodes=4)
    first = run_cluster_sharded("gang", shards=3, workers="inline", **kwargs)
    second = run_cluster_sharded("gang", shards=3, workers="inline", **kwargs)
    assert first.rank_exit == second.rank_exit
    assert first.events == second.events
    assert first.windows == second.windows


# ----------------------------------------------------------------------
# Determinism edges
# ----------------------------------------------------------------------
def _quiet(load):
    def factory(mpi: MPIRank):
        def prog():
            yield mpi.compute(load)

        return prog()

    return factory


def test_simultaneous_identical_timestamp_cross_shard_sends():
    """Two senders in shard 0 with equal loads emit cross-shard sends at
    the bit-identical simulated instant; the coordinator's
    (send_time, src, seq) ordering must reproduce the serial heap order
    exactly."""
    cpn = 4
    n_nodes = 4
    placement = block_placement(16, n_nodes, cpn)

    def sender(dst):
        def factory(mpi: MPIRank):
            def prog():
                yield mpi.compute(0.5)  # identical load for both senders
                yield mpi.send(dst, tag=7)

            return prog()

        return factory

    def receiver(src):
        def factory(mpi: MPIRank):
            def prog():
                yield mpi.recv(src, tag=7)
                yield mpi.compute(0.1)

            return prog()

        return factory

    # Ranks 0/1 live on node 0 (shard 0); ranks 8/9 on node 2 (shard 1).
    programs = [_quiet(0.01) for _ in range(16)]
    programs[0] = sender(8)
    programs[1] = sender(9)
    programs[8] = receiver(0)
    programs[9] = receiver(1)

    serial = Cluster(n_nodes=n_nodes, heuristic_factory=None)
    serial.launch(programs, placement)
    serial.run()

    sharded = run_sharded(
        n_nodes=n_nodes,
        programs=programs,
        placement=placement,
        heuristic_factory=None,
        shards=2,
        workers="inline",
    )
    assert sharded.rank_exit == serial.rank_exit
    assert sharded.messages_delivered == serial.runtime.messages_delivered


def test_event_exactly_on_window_boundary_stays_queued():
    """The window horizon is half-open: an event at exactly ``until``
    must not run inside the window (a cross-shard message landing on the
    boundary instant has to be injected first), but the clock still
    advances to the horizon."""
    fired = []
    sim = Simulator()
    sim.at(1.0, lambda: fired.append("boundary"))
    sim.run(until=1.0, until_exclusive=True)
    assert fired == []
    assert sim.now == 1.0
    # The inclusive default (serial semantics) consumes it.
    sim.run(until=1.0)
    assert fired == ["boundary"]


def test_parity_with_barrier_on_equal_loads():
    """All ranks hit every barrier at the bit-identical instant (equal
    loads): maximal simultaneous-arrival stress across shards."""
    loads = [1.0] * 16
    kwargs = dict(loads=loads, iterations=2, n_nodes=4)
    serial = run_cluster("block", **kwargs)
    sharded = run_cluster_sharded("block", shards=4, workers="inline", **kwargs)
    assert sharded.rank_exit == serial.rank_exit


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
def test_resolve_workers_decision_table(monkeypatch):
    """Pin the ``workers="auto"`` table: explicit modes pass through;
    auto picks process only when the host has ≥2 usable CPUs *and* at
    least one CPU per two shards (``cpus >= n_shards/2``) — below that,
    per-worker fork/pipe overhead dominates any overlap."""
    import repro.cluster.sharded as sh

    def fake_cpus(n):
        monkeypatch.setattr(sh, "_usable_cpus", lambda: n)

    fake_cpus(8)
    # explicit modes are never second-guessed
    assert sh._resolve_workers("inline", 8) == "inline"
    assert sh._resolve_workers("process", 1) == "process"
    with pytest.raises(ValueError):
        sh._resolve_workers("threads", 4)
    # auto: single shard has nothing to parallelize
    assert sh._resolve_workers("auto", 1) == "inline"
    # auto: multi-shard on a multi-CPU host forks
    assert sh._resolve_workers("auto", 4) == "process"
    # auto: a 1-CPU host must not spawn useless worker processes
    fake_cpus(1)
    assert sh._resolve_workers("auto", 4) == "inline"
    # auto: CPUs must cover at least half the shards
    fake_cpus(3)
    assert sh._resolve_workers("auto", 8) == "inline"  # 3 < 8/2
    assert sh._resolve_workers("auto", 6) == "process"  # 3 >= 6/2
    fake_cpus(4)
    assert sh._resolve_workers("auto", 8) == "process"  # 4 >= 8/2
    assert sh._resolve_workers("auto", 9) == "inline"  # 4 < 9/2
    # auto: the 2-CPU floor is independent of shard count
    fake_cpus(2)
    assert sh._resolve_workers("auto", 2) == "process"
    assert sh._resolve_workers("auto", 4) == "process"  # 2 >= 4/2
    assert sh._resolve_workers("auto", 5) == "inline"  # 2 < 5/2


def test_resolve_workers_auto_is_affinity_aware(monkeypatch):
    """``os.cpu_count()`` sees the whole machine; a cpuset-restricted
    container (1-CPU cgroup on a 64-CPU host) must still pick inline."""
    import os

    import repro.cluster.sharded as sh

    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0})
        assert sh._usable_cpus() == 1
        assert sh._resolve_workers("auto", 4) == "inline"
    else:  # pragma: no cover - non-Linux fallback
        assert sh._usable_cpus() == 64


def test_plan_shards_contiguous_and_balanced():
    plan = plan_shards(10, 4)
    nodes = [n for s in range(plan.n_shards) for n in plan.nodes_of(s)]
    assert sorted(nodes) == list(range(10))
    sizes = [len(plan.nodes_of(s)) for s in range(plan.n_shards)]
    assert max(sizes) - min(sizes) <= 1
    for s in range(plan.n_shards):
        block = plan.nodes_of(s)
        assert list(block) == list(range(block[0], block[0] + len(block)))


def test_plan_shards_clamps_to_node_count():
    plan = plan_shards(3, 8)
    assert plan.n_shards == 3


def test_plan_shards_rejects_degenerate_inputs():
    with pytest.raises(ValueError):
        plan_shards(0, 2)
    with pytest.raises(ValueError):
        plan_shards(4, 0)


# ----------------------------------------------------------------------
# Process transport: wire protocol, stats, failure recovery
# ----------------------------------------------------------------------
def _no_orphans():
    import multiprocessing as mp

    return [p for p in mp.active_children() if p.is_alive()]


def test_parity_process_transport_forced_on_any_host():
    """2 shards through ``workers="process"`` — the wire-protocol path —
    must match the serial run bit-for-bit even on a 1-CPU host (the CI
    smoke for the binary transport)."""
    kwargs = dict(loads=ladder_loads(8), iterations=1, n_nodes=2)
    serial = run_cluster("gang", **kwargs)
    sharded = run_cluster_sharded("gang", shards=2, workers="process", **kwargs)
    assert sharded.workers == "process"
    assert sharded.rank_exit == serial.rank_exit
    assert sharded.exec_time == serial.exec_time
    assert sharded.messages_sent == serial.messages_sent
    assert sharded.messages_delivered == serial.messages_delivered
    assert sharded.sync_rounds == sharded.windows > 0
    assert sharded.wire_bytes > 0
    assert _no_orphans() == []


def test_inline_transport_reports_zero_wire_bytes():
    result = run_cluster_sharded(
        "block", loads=ladder_loads(8), iterations=1, n_nodes=2,
        shards=2, workers="inline",
    )
    assert result.wire_bytes == 0
    assert result.sync_rounds == result.windows


def test_worker_killed_mid_run_raises_and_reaps():
    """Fault injection: a shard worker SIGKILLed mid-window must surface
    as ShardedRunError naming the shard, and every surviving worker must
    be joined or terminated — no orphaned children."""
    import os
    import signal

    from repro.cluster.sharded import ShardedRunError

    def victim(load):
        def factory(mpi: MPIRank):
            def prog():
                yield mpi.compute(load)
                # Only ever executed inside the forked worker (the test
                # forces workers="process" and never runs this serially).
                os.kill(os.getpid(), signal.SIGKILL)
                yield mpi.compute(load)

            return prog()

        return factory

    programs = [_quiet(0.5) for _ in range(8)]
    programs[7] = victim(0.25)  # node 1 -> shard 1 under 2-way block
    with pytest.raises(ShardedRunError) as err:
        run_sharded(
            n_nodes=2,
            programs=programs,
            placement=block_placement(8, 2, 4),
            heuristic_factory=None,
            shards=2,
            workers="process",
        )
    message = str(err.value)
    assert "worker failed" in message
    assert "killed or crashed mid-window" in message
    assert _no_orphans() == []


def test_worker_exception_carries_traceback_and_reaps():
    """A worker that *raises* mid-window ships its traceback back over
    the error frame before dying."""
    from repro.cluster.sharded import ShardedRunError

    def exploder(load):
        def factory(mpi: MPIRank):
            def prog():
                yield mpi.compute(load)
                raise RuntimeError("boom-in-shard")
                yield  # pragma: no cover

            return prog()

        return factory

    programs = [_quiet(0.5) for _ in range(8)]
    programs[7] = exploder(0.25)
    with pytest.raises(ShardedRunError) as err:
        run_sharded(
            n_nodes=2,
            programs=programs,
            placement=block_placement(8, 2, 4),
            heuristic_factory=None,
            shards=2,
            workers="process",
        )
    message = str(err.value)
    assert "boom-in-shard" in message
    assert "Traceback" in message
    assert _no_orphans() == []


# ----------------------------------------------------------------------
# Adaptive lookahead
# ----------------------------------------------------------------------
def test_adaptive_windows_bound_sync_rounds():
    """The earliest-send bound + multiplicative widening must cover each
    compute phase in a handful of windows, not one per lookahead: the
    paper ladder at 2 iterations syncs orders of magnitude less often
    than the fixed-width worst case (~exec_time / lookahead windows)."""
    result = run_cluster_sharded(
        "block", loads=ladder_loads(16), iterations=2, n_nodes=4,
        shards=2, workers="inline",
    )
    fixed_width_rounds = result.exec_time / 5e-5  # lookahead scale
    assert result.sync_rounds > 0
    assert result.sync_rounds < 100
    assert result.sync_rounds < fixed_width_rounds / 100


def test_injection_guard_rejects_past_times():
    """The runtime guard behind the conservative-window argument: any
    directive landing strictly before a shard's clock is a loud error,
    never a silent parity drift."""
    from types import SimpleNamespace

    from repro.cluster.sharded import ShardMPIRuntime, ShardedRunError

    fake = SimpleNamespace(kernel=SimpleNamespace(sim=SimpleNamespace(now=1.0)))
    # At or after the clock: fine.
    ShardMPIRuntime._guard_injection(fake, 1.0, "message delivery")
    ShardMPIRuntime._guard_injection(fake, 1.5, "barrier release")
    with pytest.raises(ShardedRunError, match="conservative-window"):
        ShardMPIRuntime._guard_injection(fake, 0.999, "message delivery")


# ----------------------------------------------------------------------
# Construction validation (satellite: reject degenerate models)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("base", [0.0, -1e-6])
def test_latency_model_rejects_nonpositive_base(base):
    with pytest.raises(ValueError, match="base"):
        LatencyModel(base=base)


@pytest.mark.parametrize("bandwidth", [0.0, -1.0])
def test_latency_model_rejects_nonpositive_bandwidth(bandwidth):
    with pytest.raises(ValueError, match="bandwidth"):
        LatencyModel(bandwidth=bandwidth)


def test_interconnect_model_rejects_smuggled_degenerate_models():
    class Fake:
        base = 0.0
        bandwidth = 1e9

    with pytest.raises(ValueError, match="inter"):
        InterconnectModel(inter=Fake())


def test_interconnect_model_default_is_valid():
    model = InterconnectModel()
    assert model.inter.base > 0
    assert model.intra.delay(0) > 0


# ----------------------------------------------------------------------
# Parity suite API
# ----------------------------------------------------------------------
def test_parity_suite_fuzz_smoke():
    report = run_parity_suite(fuzz=3, seed=1, include_fixed=False)
    assert len(report.cases) == 3
    assert report.ok, [c.mismatches for c in report.cases]
    assert "OK" in report.summary()


# ----------------------------------------------------------------------
# CLI: --shards / --json
# ----------------------------------------------------------------------
def test_cli_cluster_sharded_json(capsys):
    code = main(
        [
            "cluster", "--nodes", "4", "--iterations", "1",
            "--shards", "2", "--json",
        ]
    )
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    assert data["shards"] == 2
    assert data["workers"] in ("inline", "process")
    assert set(data["placements"]) == {"block", "gang"}
    for entry in data["placements"].values():
        assert entry["exec_time"] > 0
        assert len(entry["rank_exit"]) == 16
    assert data["gang_speedup_over_block"] > 0


def test_cli_cluster_serial_json_matches_sharded_exits(capsys):
    args = ["cluster", "--nodes", "2", "--iterations", "1", "--json"]
    assert main(args) == 0
    serial = json.loads(capsys.readouterr().out)
    assert main(args + ["--shards", "2"]) == 0
    sharded = json.loads(capsys.readouterr().out)
    for strategy in ("block", "gang"):
        assert (
            serial["placements"][strategy]["rank_exit"]
            == sharded["placements"][strategy]["rank_exit"]
        )


def test_cli_validate_sharded_parity_quick(capsys):
    code = main(
        ["validate", "--sharded-parity", "--quick", "--fuzz", "2", "--seed", "3"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "sharded-parity" in captured.out
    assert "OK" in captured.out
