"""Wire-protocol round-trip properties (encode→decode == identity).

The sharded process transport's parity guarantee rests on the codec
reproducing every record bit-exactly — times as raw IEEE-754 doubles
(including the ``inf`` bounds of drained shards), full-range integer
fields, same-timestamp ties, empty windows, and the max-seq edges of
the u64 sequence counter.  Hypothesis drives the structured cases;
deterministic tests pin the edges and the malformed-frame errors.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.wire import (
    FRAME_ERROR,
    FRAME_GRANT,
    FRAME_REPORT,
    FRAME_RESULT,
    FRAME_STOP,
    ShardResult,
    WindowGrant,
    WindowReport,
    WireArrival,
    WireCodec,
    WireFormatError,
    WireSend,
)

WORLD = tuple(range(8))

u32 = st.integers(0, 2**32 - 1)
u64 = st.integers(0, 2**64 - 1)
i64 = st.integers(-(2**63), 2**63 - 1)
#: Raw f64 payloads: any finite double plus the infinities the horizon
#: bounds use (NaN excluded — times are never NaN, and NaN != NaN would
#: break the identity check, not the codec).
ftime = st.floats(allow_nan=False, allow_infinity=True, width=64)
kind_text = st.text(min_size=1, max_size=24)
payloads = st.one_of(
    st.none(),
    st.integers(),
    st.text(max_size=16),
    st.tuples(st.integers(), st.text(max_size=8)),
)

send_records = st.builds(
    WireSend,
    src=u32,
    dst=u32,
    tag=i64,
    size=u64,
    send_time=ftime,
    arrival_time=ftime,
    seq=u64,
    payload=payloads,
)

comm_keys = st.one_of(
    st.just(WORLD),
    st.lists(u32, min_size=1, max_size=6, unique=True).map(tuple),
)

arrival_records = st.builds(
    WireArrival,
    ckey=comm_keys,
    kind=kind_text,
    rank=u32,
    time=ftime,
    comm_size=u32,
)

wakes = st.tuples(ftime, u32, kind_text)

grants = st.builds(
    WindowGrant,
    horizon=ftime,
    deliveries=st.lists(send_records, max_size=12),
    wakes=st.lists(wakes, max_size=8),
)

reports = st.builds(
    WindowReport,
    shard_id=st.integers(0, 2**32 - 1),
    now=ftime,
    next_action=ftime,
    live=st.integers(0, 2**32 - 1),
    sends=st.lists(send_records, max_size=12),
    arrivals=st.lists(arrival_records, max_size=8),
    exits=st.dictionaries(u32, ftime, max_size=8),
    next_send=ftime,
)

results = st.builds(
    ShardResult,
    shard_id=st.integers(0, 2**32 - 1),
    rank_exit=st.dictionaries(u32, ftime, max_size=12),
    events_processed=u64,
    messages_sent=u64,
    messages_delivered=u64,
)


@settings(max_examples=200, deadline=None)
@given(grants)
def test_grant_round_trip(grant):
    codec = WireCodec(WORLD)
    ftype, decoded = codec.decode(codec.encode_grant(grant))
    assert ftype == FRAME_GRANT
    assert decoded == grant


@settings(max_examples=200, deadline=None)
@given(reports)
def test_report_round_trip(report):
    codec = WireCodec(WORLD)
    ftype, decoded = codec.decode(codec.encode_report(report))
    assert ftype == FRAME_REPORT
    assert decoded == report


@settings(max_examples=100, deadline=None)
@given(results)
def test_result_round_trip(result):
    codec = WireCodec(WORLD)
    ftype, decoded = codec.decode(codec.encode_result(result))
    assert ftype == FRAME_RESULT
    assert decoded == result


@settings(max_examples=50, deadline=None)
@given(st.text(max_size=200))
def test_error_frame_round_trip(message):
    codec = WireCodec(WORLD)
    ftype, decoded = codec.decode(codec.encode_error(message))
    assert ftype == FRAME_ERROR
    assert decoded == message


def test_stop_frame_round_trip():
    codec = WireCodec(WORLD)
    assert codec.decode(codec.encode_stop()) == (FRAME_STOP, None)


# ----------------------------------------------------------------------
# Deterministic edges the fuzz might not pin every run
# ----------------------------------------------------------------------
def _send(seq, t=1.25, payload=None):
    return WireSend(
        src=0, dst=1, tag=-1, size=64, send_time=t, arrival_time=t + 5e-5,
        seq=seq, payload=payload,
    )


def test_same_timestamp_ties_keep_order_and_seq():
    """Messages at the bit-identical instant differ only by seq — the
    coordinator's tiebreaker — and must come back in list order."""
    codec = WireCodec(WORLD)
    report = WindowReport(
        shard_id=3, now=1.25, next_action=1.3, live=4,
        sends=[_send(0), _send(1), _send(2)], next_send=1.3,
    )
    _, decoded = codec.decode(codec.encode_report(report))
    assert [s.seq for s in decoded.sends] == [0, 1, 2]
    assert decoded == report


def test_empty_window_report_is_small_and_identical():
    """A quiet window — the common case the delta design optimizes —
    carries no arrays and stays well under one cache line + header."""
    codec = WireCodec(WORLD)
    report = WindowReport(
        shard_id=0, now=2.0, next_action=2.5, live=8, next_send=3.0
    )
    raw = codec.encode_report(report)
    assert len(raw) < 64
    assert codec.decode(raw) == (FRAME_REPORT, report)


def test_max_seq_and_extreme_field_edges():
    codec = WireCodec(WORLD)
    edge = WireSend(
        src=2**32 - 1, dst=0, tag=-(2**63), size=2**64 - 1,
        send_time=5e-324, arrival_time=math.inf, seq=2**64 - 1,
    )
    grant = WindowGrant(horizon=math.inf, deliveries=[edge])
    _, decoded = codec.decode(codec.encode_grant(grant))
    assert decoded.deliveries[0] == edge
    assert decoded.deliveries[0].seq == 2**64 - 1
    assert math.isinf(decoded.deliveries[0].arrival_time)


def test_infinite_bounds_round_trip_bit_exact():
    """Drained shards report inf bounds; inf must survive the f64 pack."""
    codec = WireCodec(WORLD)
    report = WindowReport(
        shard_id=1, now=4.0, next_action=math.inf, live=0,
        next_send=math.inf,
    )
    _, decoded = codec.decode(codec.encode_report(report))
    assert decoded.next_action == math.inf
    assert decoded.next_send == math.inf


def test_world_communicator_travels_as_sentinel():
    """The world ckey must not serialize its rank array — and an
    explicit non-world communicator must."""
    codec = WireCodec(WORLD)
    world_arr = WireArrival(
        ckey=WORLD, kind="barrier", rank=1, time=1.0, comm_size=8
    )
    sub = tuple(range(4))
    sub_arr = WireArrival(
        ckey=sub, kind="barrier", rank=2, time=1.0, comm_size=4
    )
    base = WindowReport(shard_id=0, now=1.0, next_action=2.0, live=8)
    raw_world = codec.encode_report(
        WindowReport(
            shard_id=0, now=1.0, next_action=2.0, live=8,
            arrivals=[world_arr],
        )
    )
    raw_sub = codec.encode_report(
        WindowReport(
            shard_id=0, now=1.0, next_action=2.0, live=8, arrivals=[sub_arr]
        )
    )
    # Sentinel world comm: 1 flag byte; explicit comm: flag + count + ranks.
    assert len(raw_sub) == len(raw_world) + 4 + 4 * len(sub)
    assert codec.decode(raw_world)[1].arrivals == [world_arr]
    assert codec.decode(raw_sub)[1].arrivals == [sub_arr]
    assert codec.decode(codec.encode_report(base))[1].arrivals == []


def test_payloads_ride_in_trailing_blob():
    codec = WireCodec(WORLD)
    grant = WindowGrant(
        horizon=2.0,
        deliveries=[_send(0), _send(1, payload={"k": [1, 2]}), _send(2)],
    )
    _, decoded = codec.decode(codec.encode_grant(grant))
    assert decoded.deliveries[0].payload is None
    assert decoded.deliveries[1].payload == {"k": [1, 2]}
    assert decoded.deliveries[2].payload is None


def test_payload_free_grant_has_no_pickle_overhead():
    """Zero-payload windows (every workload in this repo) must not pay
    pickle: the trailing blob is exactly the 4-byte empty length."""
    codec = WireCodec(WORLD)
    raw = codec.encode_grant(WindowGrant(horizon=1.0, deliveries=[_send(0)]))
    assert raw[-4:] == b"\x00\x00\x00\x00"


def test_malformed_frames_raise_wire_format_error():
    codec = WireCodec(WORLD)
    with pytest.raises(WireFormatError):
        codec.decode(b"")
    with pytest.raises(WireFormatError):
        codec.decode(bytes([99]))  # unknown frame type
    whole = codec.encode_report(
        WindowReport(shard_id=0, now=1.0, next_action=2.0, live=1)
    )
    with pytest.raises(WireFormatError):
        codec.decode(whole[: len(whole) - 3])  # truncated frame


def test_codec_is_transport_symmetric():
    """Distinct codec instances built with the same world decode each
    other's frames — the property the forked workers rely on."""
    a, b = WireCodec(WORLD), WireCodec(WORLD)
    report = WindowReport(
        shard_id=2, now=1.0, next_action=1.5, live=3,
        sends=[_send(0)], exits={5: 0.75},
    )
    assert b.decode(a.encode_report(report)) == (FRAME_REPORT, report)
    assert a.decode(b.encode_stop()) == (FRAME_STOP, None)
