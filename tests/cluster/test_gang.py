"""Gang-placement strategy tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.gang import Slot, block_placement, gang_placement


def test_block_placement_contiguous():
    p = block_placement(8, 2, 4)
    assert p.slots[0] == Slot(0, 0)
    assert p.slots[3] == Slot(0, 3)
    assert p.slots[4] == Slot(1, 0)
    assert p.slots[7] == Slot(1, 3)


def test_block_placement_overflow_rejected():
    with pytest.raises(ValueError):
        block_placement(9, 2, 4)


def test_block_core_pairs_are_adjacent_ranks():
    p = block_placement(4, 1, 4)
    pairs = {tuple(sorted(pair)) for pair in p.core_pairs}
    assert pairs == {(0, 1), (2, 3)}


def test_gang_pairs_heavy_with_light():
    loads = [1.0, 1.1, 1.2, 1.3, 7.0, 7.1, 7.2, 7.3]
    p = gang_placement(loads, 2, 4)
    for heavy, light in p.core_pairs:
        assert loads[heavy] > 5.0
        assert loads[light] < 2.0
        # the pair shares one physical core
        sh, sl = p.slots[heavy], p.slots[light]
        assert sh.node == sl.node
        assert sh.cpu // 2 == sl.cpu // 2


def test_gang_equalizes_node_totals():
    loads = [0.4, 0.5, 0.6, 0.7, 3.2, 3.3, 3.4, 3.5]
    p = gang_placement(loads, 2, 4)
    per_node = p.node_loads(loads)
    assert abs(per_node[0] - per_node[1]) < 0.5


def test_gang_vs_block_node_imbalance():
    loads = [0.4, 0.5, 0.6, 0.7, 3.2, 3.3, 3.4, 3.5]
    block = block_placement(len(loads), 2, 4).node_loads(loads)
    gang = gang_placement(loads, 2, 4).node_loads(loads)
    block_spread = abs(block[0] - block[1])
    gang_spread = abs(gang[0] - gang[1])
    assert gang_spread < block_spread / 5


def test_gang_odd_rank_count():
    loads = [1.0, 2.0, 3.0]
    p = gang_placement(loads, 1, 4)
    assert set(p.slots) == {0, 1, 2}
    assert len(p.core_pairs) == 1


def test_gang_rejects_odd_cpus_per_node():
    with pytest.raises(ValueError):
        gang_placement([1.0, 2.0], 1, 3)


def test_gang_overflow_rejected():
    with pytest.raises(ValueError):
        gang_placement([1.0] * 5, 1, 4)


@given(
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=16),
    st.integers(1, 4),
)
def test_property_gang_placement_valid(loads, n_nodes):
    cpn = 4
    if len(loads) > n_nodes * cpn:
        return
    p = gang_placement(loads, n_nodes, cpn)
    # every rank placed exactly once, within bounds, no slot collision
    assert set(p.slots) == set(range(len(loads)))
    seen = set()
    for slot in p.slots.values():
        assert 0 <= slot.node < n_nodes
        assert 0 <= slot.cpu < cpn
        assert (slot.node, slot.cpu) not in seen
        seen.add((slot.node, slot.cpu))
