"""Launcher and RankSpec tests."""

import pytest

from repro.kernel.policies import SchedPolicy, TaskState
from repro.workloads import MetBench, launch_workload
from repro.workloads.base import RankSpec, Workload


def test_launch_binds_ranks_in_order(quiet_kernel):
    wl = MetBench(iterations=1)
    launched = launch_workload(quiet_kernel, wl)
    assert set(launched.tasks) == {"master", "P1", "P2", "P3", "P4"}
    # rank 0 is the master, workers follow
    assert launched.runtime.tasks[0] is launched.task("master")
    assert launched.runtime.tasks[1] is launched.task("P1")


def test_launch_pins_ranks(quiet_kernel):
    launched = launch_workload(quiet_kernel, MetBench(iterations=1))
    assert launched.task("P1").cpus_allowed == {0}
    assert launched.task("P4").cpus_allowed == {3}


def test_launch_without_hpc_keeps_normal_policy(quiet_kernel):
    launched = launch_workload(quiet_kernel, MetBench(iterations=1))
    quiet_kernel.sim.run(until=0.001)
    assert launched.task("P1").policy == SchedPolicy.NORMAL


def test_launch_with_hpc_optin(quiet_kernel):
    from repro.hpcsched import attach_hpcsched

    attach_hpcsched(quiet_kernel)
    launched = launch_workload(quiet_kernel, MetBench(iterations=1), use_hpc=True)
    quiet_kernel.sim.run(until=0.001)
    # the wrapper's first action moved every rank into SCHED_HPC
    assert launched.task("P1").policy == SchedPolicy.HPC
    assert launched.task("master").policy == SchedPolicy.HPC


def test_workload_measured_names_excludes_master():
    wl = MetBench(iterations=1)
    assert wl.measured_names() == ["P1", "P2", "P3", "P4"]


def test_unpinned_spec(quiet_kernel):
    from repro.kernel.syscalls import Compute

    def factory(mpi):
        def prog():
            yield Compute(0.01)

        return prog()

    class Solo(Workload):
        name = "solo"

        def rank_specs(self):
            return [RankSpec(name="only", factory=factory, cpu=2, pin=False)]

    launched = launch_workload(quiet_kernel, Solo())
    assert launched.task("only").cpus_allowed is None
    assert launched.task("only").cpu == 2
