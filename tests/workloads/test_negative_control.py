"""Negative control: a balanced application (SP-MZ-like equal zones).

A correct dynamic balancer must (a) recognize there is nothing to fix,
(b) not oscillate, and (c) not cost measurable performance.  The paper
implies this ("the goal of the heuristic is to find a stable state ...
and to remain there"); these tests pin it down.
"""

import pytest

from repro.experiments.common import run_experiment
from repro.workloads.btmz import BTMZ


@pytest.fixture(scope="module")
def runs():
    make = lambda: BTMZ.sp_mz_like(iterations=25)  # noqa: E731
    return {
        sched: run_experiment(make(), sched, keep_trace=False)
        for sched in ("cfs", "uniform", "adaptive", "hybrid")
    }


def test_baseline_is_balanced(runs):
    comps = [t.pct_comp for t in runs["cfs"].tasks.values()]
    assert max(comps) - min(comps) < 5.0
    assert min(comps) > 90.0


@pytest.mark.parametrize("sched", ["uniform", "adaptive", "hybrid"])
def test_hpcsched_does_not_slow_balanced_apps(runs, sched):
    base = runs["cfs"].exec_time
    assert runs[sched].exec_time <= base * 1.01


@pytest.mark.parametrize("sched", ["uniform", "adaptive", "hybrid"])
def test_no_priority_oscillation_on_balanced_apps(runs, sched):
    """At most one initial decision round; afterwards the detector
    freezes.  (All-high utilization -> everyone targets MAX, which is
    equivalent to everyone staying at MIN: differences are zero.)"""
    assert runs[sched].priority_changes <= 4


@pytest.mark.parametrize("sched", ["uniform", "adaptive", "hybrid"])
def test_priorities_end_equal_within_cores(runs, sched):
    """Whatever absolute level the heuristic settled on, SMT siblings
    must end at the *same* level (no residual bias)."""
    hist = runs[sched].priority_history
    final = {}
    for name, entries in hist.items():
        final[name] = entries[-1][1] if entries else 4
    assert final.get("P1", 4) == final.get("P2", 4)
    assert final.get("P3", 4) == final.get("P4", 4)
