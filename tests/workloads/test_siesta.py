"""SIESTA workload tests: chunk generation, determinism, irregularity."""

import numpy as np
import pytest

from repro.workloads.siesta import DEFAULT_CHUNK_MEANS, Siesta


def test_chunk_shape():
    wl = Siesta(scf_steps=3, subiters=10)
    assert wl._chunks.shape == (4, 3, 10)


def test_deterministic_for_same_seed():
    a = Siesta(scf_steps=2, subiters=5, seed=7)
    b = Siesta(scf_steps=2, subiters=5, seed=7)
    assert np.allclose(a._chunks, b._chunks)


def test_different_seed_differs():
    a = Siesta(scf_steps=2, subiters=5, seed=7)
    b = Siesta(scf_steps=2, subiters=5, seed=8)
    assert not np.allclose(a._chunks, b._chunks)


def test_means_respected():
    wl = Siesta(scf_steps=30, subiters=100)
    for r, mean in enumerate(wl.chunk_means):
        assert wl._chunks[r].mean() == pytest.approx(mean, rel=0.15)


def test_rank_imbalance_ladder():
    wl = Siesta()
    totals = [wl.total_work(r) for r in range(4)]
    assert totals == sorted(totals, reverse=True)
    assert totals[0] / totals[3] > 3.0


def test_iterations_are_irregular():
    """Iteration i must not predict i+1 (the anti-heuristic property)."""
    wl = Siesta(scf_steps=4, subiters=50)
    light_rank = wl._chunks[1].ravel()
    ratios = light_rank[1:] / light_rank[:-1]
    assert ratios.std() > 0.2


def test_heavy_rank_is_steadier_than_light_ranks():
    wl = Siesta(scf_steps=4, subiters=100)
    cv = lambda x: x.std() / x.mean()  # noqa: E731
    assert cv(wl._chunks[0].ravel()) < cv(wl._chunks[1].ravel())


def test_sigma_scalar_broadcast():
    wl = Siesta(scf_steps=2, subiters=5, sigma=0.5)
    assert wl.sigma == [0.5, 0.5, 0.5, 0.5]


def test_sigma_list_padded():
    wl = Siesta(scf_steps=2, subiters=5, sigma=[0.1, 0.2])
    assert wl.sigma == [0.1, 0.2, 0.2, 0.2]


def test_chunk_accessor():
    wl = Siesta(scf_steps=2, subiters=5)
    assert wl.chunk(0, 0, 0) == float(wl._chunks[0, 0, 0])


def test_default_means_match_table6_ladder():
    # P1 dominates; ladder ratios roughly mirror the paper's %Comp ladder
    m = DEFAULT_CHUNK_MEANS
    assert m[0] / m[1] == pytest.approx(98.90 / 52.79, rel=0.15)
