"""OS-noise daemon tests."""

import pytest

from repro.kernel.policies import SchedPolicy, TaskState
from repro.workloads.noise import NoiseDaemons, spawn_noise
from tests.conftest import pure_compute_program


def test_duty_cycle():
    cfg = NoiseDaemons(period=0.01, burst=0.0005)
    assert cfg.duty == pytest.approx(0.05)


def test_one_daemon_per_cpu(quiet_kernel):
    daemons = spawn_noise(quiet_kernel)
    assert len(daemons) == 4
    assert {d.cpu for d in daemons} == {0, 1, 2, 3}
    assert all(getattr(d, "daemon") for d in daemons)
    assert all(d.policy == SchedPolicy.NORMAL for d in daemons)


def test_daemons_pinned(quiet_kernel):
    daemons = spawn_noise(quiet_kernel, cpus=[1, 3])
    assert [sorted(d.cpus_allowed) for d in daemons] == [[1], [3]]


def test_daemons_steal_roughly_duty_cycle(quiet_kernel):
    k = quiet_kernel
    cfg = NoiseDaemons(period=0.01, burst=0.0005, jitter=0.0)
    daemons = spawn_noise(k, cfg, cpus=[0])
    worker = k.spawn("w", pure_compute_program(1.0), cpu=0, cpus_allowed=[0])
    end = k.run()
    daemon_time = daemons[0].sum_exec_runtime
    # burst is expressed in work units; wall occupancy shrinks when the
    # daemon runs in ST mode (up to 2.1x), so the observed duty sits
    # between duty/2.1 and duty.
    observed = daemon_time / end
    assert cfg.duty / 3.0 < observed <= cfg.duty * 1.1


def test_noise_slows_colocated_worker(quiet_kernel):
    k = quiet_kernel
    spawn_noise(k, NoiseDaemons(period=0.01, burst=0.001), cpus=[0])
    k.spawn("w", pure_compute_program(0.5), cpu=0, cpus_allowed=[0])
    end_noisy = k.run()

    from repro.experiments.common import build_kernel

    k2 = build_kernel()
    k2.spawn("w", pure_compute_program(0.5), cpu=0, cpus_allowed=[0])
    end_clean = k2.run()
    assert end_noisy > end_clean


def test_run_terminates_despite_daemons(quiet_kernel):
    """Daemons are infinite loops; the run must still end."""
    k = quiet_kernel
    spawn_noise(k)
    k.spawn("w", pure_compute_program(0.05), cpu=0, cpus_allowed=[0])
    end = k.run()
    assert end < 1.0
