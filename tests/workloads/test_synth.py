"""The synth generator family: exact imbalance, conservation,
byte-determinism (property-based), placements and validation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.synth import (
    DEFAULT_MEAN_WORK,
    PLACEMENTS,
    LocalBad,
    OffloadLatency,
    SyntheticConvergence,
    SyntheticScatter,
    _bad_order,
    _paired_order,
    _stick_break,
    calculate_work,
    realized_imbalance,
    unbalanced_sweep,
)

# ----------------------------------------------------------------------
# The acceptance grid: every feasible (I, N) cell must hit the target
# imbalance within 1%.  calculate_work is closed-form, so the realized
# error is actually float-precision; 1% is the ISSUE's acceptance bar.
# ----------------------------------------------------------------------

GRID = [
    (imbalance, n)
    for imbalance in (1.0, 1.5, 2.0, 4.0)
    for n in (4, 16, 64)
    if imbalance <= n
]


@pytest.mark.parametrize("imbalance,n", GRID)
def test_acceptance_grid_hits_target_within_one_percent(imbalance, n):
    loads = calculate_work(n, imbalance)
    assert realized_imbalance(loads) == pytest.approx(imbalance, rel=0.01)
    # And in fact to float precision:
    assert realized_imbalance(loads) == pytest.approx(imbalance, rel=1e-9)


# ----------------------------------------------------------------------
# Property-based coverage over the full feasible (I, N) space.
# ----------------------------------------------------------------------

#: (ranks, imbalance, mean_work, seed) with imbalance always feasible.
configs = st.integers(min_value=1, max_value=96).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.floats(min_value=1.0, max_value=float(n), allow_nan=False),
        st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
)


@settings(max_examples=80, deadline=None)
@given(cfg=configs)
def test_realized_imbalance_matches_the_target(cfg):
    n, imbalance, mean_work, seed = cfg
    loads = calculate_work(n, imbalance, mean_work=mean_work, seed=seed)
    assert len(loads) == n
    assert all(w >= 0.0 for w in loads)
    assert realized_imbalance(loads) == pytest.approx(imbalance, rel=1e-9)


@settings(max_examples=80, deadline=None)
@given(cfg=configs)
def test_total_work_is_conserved(cfg):
    n, imbalance, mean_work, seed = cfg
    loads = calculate_work(n, imbalance, mean_work=mean_work, seed=seed)
    assert math.fsum(loads) == pytest.approx(n * mean_work, rel=1e-9)
    # No rank may exceed the worst rank's pinned share.
    assert max(loads) <= imbalance * mean_work * (1 + 1e-12)


@settings(max_examples=60, deadline=None)
@given(cfg=configs)
def test_generation_is_byte_deterministic_under_a_fixed_seed(cfg):
    n, imbalance, mean_work, seed = cfg
    a = calculate_work(n, imbalance, mean_work=mean_work, seed=seed)
    b = calculate_work(n, imbalance, mean_work=mean_work, seed=seed)
    # Byte-identical, not approximately equal.
    assert a == b


def test_distinct_seeds_draw_distinct_distributions():
    a = calculate_work(16, 2.0, seed=0)
    b = calculate_work(16, 2.0, seed=1)
    assert a != b
    # ... but both still hit the target exactly.
    for loads in (a, b):
        assert realized_imbalance(loads) == pytest.approx(2.0, rel=1e-9)


def test_explicit_rng_bypasses_the_seed():
    rng = np.random.default_rng(7)
    a = calculate_work(8, 3.0, rng=rng)
    b = calculate_work(8, 3.0, rng=np.random.default_rng(7))
    assert a == b


def test_degenerate_targets_are_exact():
    assert calculate_work(1, 1.0) == [DEFAULT_MEAN_WORK]
    assert calculate_work(5, 1.0, mean_work=0.25) == [0.25] * 5
    # I == N: one rank holds all the work.
    loads = calculate_work(4, 4.0, mean_work=2.0)
    assert max(loads) == pytest.approx(8.0)
    assert sorted(loads)[:-1] == pytest.approx([0.0, 0.0, 0.0])


@pytest.mark.parametrize(
    "ranks,imbalance,mean_work,match",
    [
        (0, 1.0, 1.0, "at least one rank"),
        (4, 0.5, 1.0, "infeasible"),
        (4, 4.5, 1.0, "infeasible"),
        (4, 2.0, 0.0, "mean_work"),
        (4, 2.0, -1.0, "mean_work"),
    ],
)
def test_calculate_work_rejects_bad_parameters(ranks, imbalance, mean_work, match):
    with pytest.raises(ValueError, match=match):
        calculate_work(ranks, imbalance, mean_work=mean_work)


def test_stick_break_falls_back_to_the_even_split():
    """An infeasibly tight cap exhausts rejection sampling; the even
    split (feasible by the caller's precondition) is the fallback."""

    class AlwaysBad:
        def uniform(self, lo, hi, size):
            # Every draw puts nearly everything in one gap.
            return np.full(size, lo + (hi - lo) * 1e-9)

    pieces = _stick_break(AlwaysBad(), 4, 1.0, 0.26)
    assert pieces == [0.25] * 4


# ----------------------------------------------------------------------
# Placements.
# ----------------------------------------------------------------------


def test_paired_order_couples_extremes_per_core():
    loads = [4.0, 1.0, 3.0, 2.0]
    out = _paired_order(loads)
    assert sorted(out) == sorted(loads)
    # Core 0 = (lightest, heaviest), core 1 = (2nd lightest, 2nd heaviest).
    assert out == [1.0, 4.0, 2.0, 3.0]


def test_paired_order_handles_odd_counts():
    out = _paired_order([3.0, 1.0, 2.0])
    assert out == [1.0, 3.0, 2.0]


def test_bad_order_couples_similar_loads():
    assert _bad_order([4.0, 1.0, 3.0, 2.0]) == [1.0, 2.0, 3.0, 4.0]


def test_scatter_placements_permute_the_same_distribution():
    base = calculate_work(8, 2.0)
    by_placement = {
        p: SyntheticScatter(imbalance=2.0, ranks=8, placement=p).loads
        for p in PLACEMENTS
    }
    for loads in by_placement.values():
        assert sorted(loads) == sorted(base)
    assert by_placement["shuffled"] == base
    assert by_placement["bad"] == sorted(base)


def test_local_bad_forces_the_pathological_placement():
    w = LocalBad(imbalance=2.0, ranks=8)
    assert w.placement == "bad"
    assert w.loads == sorted(w.loads)
    assert w.name == "local_bad"


# ----------------------------------------------------------------------
# Workload shapes.
# ----------------------------------------------------------------------


def test_scatter_topology_pins_one_rank_per_logical_cpu():
    assert SyntheticScatter(ranks=4).topology().n_cpus == 4
    assert SyntheticScatter(ranks=8).topology().n_cpus == 8
    assert SyntheticScatter(ranks=6).topology().n_cpus == 8  # rounds up
    assert SyntheticScatter(ranks=64).topology().n_cpus == 64


def test_scatter_rank_specs_are_pinned_in_order():
    w = SyntheticScatter(imbalance=2.0, ranks=8)
    specs = w.rank_specs()
    assert [s.name for s in specs] == [f"R{i}" for i in range(1, 9)]
    assert [s.cpu for s in specs] == list(range(8))


def test_scatter_rejects_bad_parameters():
    with pytest.raises(ValueError, match="two ranks"):
        SyntheticScatter(ranks=1)
    with pytest.raises(ValueError, match="iteration"):
        SyntheticScatter(ranks=4, iterations=0)
    with pytest.raises(ValueError, match="placement"):
        SyntheticScatter(ranks=4, placement="diagonal")
    with pytest.raises(ValueError, match="loads"):
        SyntheticScatter(ranks=4, loads=[1.0, 2.0])


def test_convergence_swaps_partners_at_the_step():
    w = SyntheticConvergence(ranks=4, imbalance=1.5, iterations=10, step_at=4)
    light, heavy = 0.5, 1.5
    assert w.loads == [light, heavy, light, heavy]
    for it in range(4):
        assert w.worker_load(0, it) == light
        assert w.worker_load(1, it) == heavy
    for it in range(4, 10):
        assert w.worker_load(0, it) == heavy
        assert w.worker_load(1, it) == light


def test_convergence_reverts_at_the_reversal():
    w = SyntheticConvergence(
        ranks=4, imbalance=1.5, iterations=12, step_at=4, revert_at=8
    )
    assert w.worker_load(0, 3) == 0.5
    assert w.worker_load(0, 5) == 1.5
    assert w.worker_load(0, 9) == 0.5  # back to the original
    # Per-pair totals are invariant across the step: the step changes
    # *who* is heavy, never how much total work exists.
    for it in (0, 5, 9):
        assert w.worker_load(0, it) + w.worker_load(1, it) == pytest.approx(2.0)


def test_convergence_rejects_bad_parameters():
    with pytest.raises(ValueError, match="even"):
        SyntheticConvergence(ranks=5)
    with pytest.raises(ValueError, match="infeasible"):
        SyntheticConvergence(ranks=4, imbalance=2.5)
    with pytest.raises(ValueError, match="step_at"):
        SyntheticConvergence(ranks=4, iterations=10, step_at=0)
    with pytest.raises(ValueError, match="step_at"):
        SyntheticConvergence(ranks=4, iterations=10, step_at=10)
    with pytest.raises(ValueError, match="revert_at"):
        SyntheticConvergence(ranks=4, iterations=10, step_at=5, revert_at=4)


def test_offload_pairs_origins_with_workers():
    w = OffloadLatency(ranks=4, iterations=2, messages=3)
    specs = w.rank_specs()
    assert len(specs) == 4
    assert [s.cpu for s in specs] == [0, 1, 2, 3]
    assert w.topology().n_cpus == 4
    with pytest.raises(ValueError, match="even"):
        OffloadLatency(ranks=3)
    with pytest.raises(ValueError, match="message"):
        OffloadLatency(ranks=4, messages=0)


# ----------------------------------------------------------------------
# The sweep grid.
# ----------------------------------------------------------------------


def test_unbalanced_sweep_drops_infeasible_cells():
    grid = unbalanced_sweep(imbalances=(1.0, 1.5, 2.0, 4.0), ranks=(2, 4, 16))
    cells = {(c["imbalance"], c["ranks"]) for c in grid}
    assert (4.0, 2) not in cells  # I > N is infeasible
    assert (2.0, 2) in cells
    assert (4.0, 4) in cells
    assert len(grid) == 11
    # Every surviving cell is feasible and usable by calculate_work.
    for c in grid:
        loads = calculate_work(c["ranks"], c["imbalance"])
        assert realized_imbalance(loads) == pytest.approx(
            c["imbalance"], rel=1e-9
        )


def test_default_sweep_matches_the_acceptance_grid():
    grid = unbalanced_sweep()
    assert len(grid) == len(GRID)
    assert {(c["imbalance"], c["ranks"]) for c in grid} == set(GRID)
