"""MetBenchVar: load reversal schedule tests."""

import pytest

from repro.workloads.metbenchvar import MetBenchVar


def test_k_validation():
    with pytest.raises(ValueError):
        MetBenchVar(k=0)


def test_load_swap_schedule():
    wl = MetBenchVar(loads=[1.0, 4.0, 1.0, 4.0], k=15)
    # period 0 (iterations 0-14): own loads
    assert wl.worker_load(0, 0) == 1.0
    assert wl.worker_load(1, 14) == 4.0
    # period 1 (15-29): partner loads (reversed imbalance)
    assert wl.worker_load(0, 15) == 4.0
    assert wl.worker_load(1, 15) == 1.0
    assert wl.worker_load(2, 20) == 4.0
    assert wl.worker_load(3, 29) == 1.0
    # period 2 (30-44): back to own loads
    assert wl.worker_load(0, 30) == 1.0
    assert wl.worker_load(1, 44) == 4.0


def test_pairs_swap_within_core():
    """P1<->P2 and P3<->P4 swap (the core pairs), never across cores."""
    wl = MetBenchVar(loads=[1.0, 4.0, 2.0, 8.0], k=1)
    assert wl.worker_load(0, 1) == 4.0  # P1 takes P2's load
    assert wl.worker_load(2, 1) == 8.0  # P3 takes P4's load
    assert wl.worker_load(3, 1) == 2.0


def test_total_work_preserved_per_period():
    wl = MetBenchVar(k=5, iterations=10)
    total_p0 = sum(wl.worker_load(w, 0) for w in range(4))
    total_p1 = sum(wl.worker_load(w, 5) for w in range(4))
    assert total_p0 == pytest.approx(total_p1)


def test_baseline_symmetry_of_percomp(quiet_kernel):
    """Across an even number of periods every worker sees both loads,
    so baseline %Comp averages symmetrically (paper: 50.2 / 75.1)."""
    from repro.experiments.common import run_experiment

    res = run_experiment(
        MetBenchVar(iterations=6, k=3), "cfs", keep_trace=False
    )
    assert res.tasks["P1"].pct_comp == pytest.approx(
        res.tasks["P3"].pct_comp, abs=1.0
    )
    assert res.tasks["P2"].pct_comp == pytest.approx(
        res.tasks["P4"].pct_comp, abs=1.0
    )
    # mixed small/big periods land between the two pure utilizations
    assert 30 < res.tasks["P1"].pct_comp < 75
