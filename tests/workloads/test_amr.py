"""AMR drift workload tests."""

import pytest

from repro.experiments.common import run_experiment
from repro.workloads.amr import AMRDrift


def test_front_sweeps_whole_domain():
    wl = AMRDrift(iterations=10)
    assert wl.front_position(0) == 0.0
    assert wl.front_position(9) == pytest.approx(3.0)


def test_total_work_conserved_per_iteration():
    wl = AMRDrift()
    for it in (0, 15, 30, 59):
        total = sum(wl.work_of(r, it) for r in range(wl.ranks))
        assert total == pytest.approx(wl.total_work)


def test_hot_rank_follows_the_front():
    wl = AMRDrift(iterations=60)
    first_hot = max(range(4), key=lambda r: wl.work_of(r, 0))
    last_hot = max(range(4), key=lambda r: wl.work_of(r, 59))
    mid_hot = max(range(4), key=lambda r: wl.work_of(r, 30))
    assert first_hot == 0
    assert last_hot == 3
    assert mid_hot in (1, 2)


def test_every_rank_gets_its_turn_as_hotspot():
    wl = AMRDrift(iterations=60)
    hot_ranks = {
        max(range(4), key=lambda r: wl.work_of(r, it)) for it in range(60)
    }
    assert hot_ranks == {0, 1, 2, 3}


def test_floor_bounds_minimum_work():
    wl = AMRDrift()
    for it in range(0, 60, 10):
        for r in range(4):
            assert wl.work_of(r, it) >= wl.floor


def test_ranks_validation():
    with pytest.raises(ValueError):
        AMRDrift(ranks=1)


@pytest.mark.slow
def test_hpcsched_tracks_the_drift():
    """The detector must re-balance repeatedly (not once) and still
    come out ahead of CFS."""
    base = run_experiment(AMRDrift(iterations=30), "cfs", keep_trace=False)
    uni = run_experiment(AMRDrift(iterations=30), "uniform", keep_trace=False)
    assert uni.improvement_over(base) > 2.0
    # the front crossing cores forces several distinct re-balances
    assert uni.priority_changes >= 4
