"""MetBench workload structure + short-run behaviour."""

import pytest

from repro.experiments.common import run_experiment
from repro.workloads.metbench import (
    DEFAULT_BIG_LOAD,
    DEFAULT_SMALL_LOAD,
    MetBench,
)


def test_default_layout_alternates_small_big():
    wl = MetBench()
    assert wl.loads == [
        DEFAULT_SMALL_LOAD, DEFAULT_BIG_LOAD,
        DEFAULT_SMALL_LOAD, DEFAULT_BIG_LOAD,
    ]
    # each core pair hosts one small + one big worker
    specs = wl.rank_specs()
    names = [s.name for s in specs]
    assert names == ["master", "P1", "P2", "P3", "P4"]
    cpus = {s.name: s.cpu for s in specs}
    assert cpus["P1"] == 0 and cpus["P2"] == 1  # core 0
    assert cpus["P3"] == 2 and cpus["P4"] == 3  # core 1


def test_constant_loads_across_iterations():
    wl = MetBench()
    for it in range(5):
        assert wl.worker_load(0, it) == DEFAULT_SMALL_LOAD
        assert wl.worker_load(1, it) == DEFAULT_BIG_LOAD


def test_short_run_baseline_shape(quiet_kernel):
    res = run_experiment(MetBench(iterations=4), "cfs", keep_trace=False)
    # small workers ~25% utilization, big ~100%
    assert res.tasks["P1"].pct_comp == pytest.approx(25.3, abs=3.0)
    assert res.tasks["P2"].pct_comp > 99.0
    assert res.tasks["P3"].pct_comp == pytest.approx(25.3, abs=3.0)
    assert res.tasks["P4"].pct_comp > 99.0


def test_iteration_time_calibration(quiet_kernel):
    """45 iterations -> ~81.8 s baseline (paper Table III)."""
    res = run_experiment(MetBench(iterations=5), "cfs", keep_trace=False)
    per_iter = res.exec_time / 5
    assert per_iter == pytest.approx(81.78 / 45, rel=0.02)


def test_custom_loads_and_iterations():
    wl = MetBench(loads=[1.0, 2.0], iterations=7, cpus=[0, 2])
    assert len(wl.rank_specs()) == 3  # master + 2 workers
    assert wl.iterations == 7


def test_per_worker_profiles():
    from repro.power5.perfmodel import CPU_BOUND, MEM_BOUND

    wl = MetBench(profiles=[CPU_BOUND, MEM_BOUND, CPU_BOUND, MEM_BOUND])
    specs = {s.name: s for s in wl.rank_specs()}
    assert specs["P1"].profile is CPU_BOUND
    assert specs["P2"].profile is MEM_BOUND


def test_profiles_length_validated():
    from repro.power5.perfmodel import CPU_BOUND

    with pytest.raises(ValueError):
        MetBench(profiles=[CPU_BOUND])
