"""The workload registry: listing, resolution, and error naming."""

import pytest

from repro.workloads import (
    WORKLOADS,
    Workload,
    available,
    resolve,
)
from repro.workloads.synth import SyntheticScatter


def test_registry_lists_every_workload_by_its_declared_name():
    assert set(WORKLOADS) == {
        "metbench",
        "metbenchvar",
        "bt-mz",
        "siesta",
        "amr-drift",
        "synthetic_scatter",
        "synthetic_convergence",
        "local_bad",
        "offload_latency",
    }
    for name, cls in WORKLOADS.items():
        assert cls.name == name
        assert issubclass(cls, Workload)


def test_available_is_sorted_and_matches_the_registry():
    names = available()
    assert isinstance(names, tuple)
    assert list(names) == sorted(WORKLOADS)


def test_resolve_returns_the_class():
    assert resolve("synthetic_scatter") is SyntheticScatter
    for name in available():
        assert resolve(name) is WORKLOADS[name]


def test_resolve_error_names_the_valid_workloads():
    with pytest.raises(KeyError) as excinfo:
        resolve("metbench_typo")
    message = str(excinfo.value)
    assert "metbench_typo" in message
    # The fix under test: the error enumerates what *would* have worked.
    for name in available():
        assert name in message
