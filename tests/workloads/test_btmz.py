"""BT-MZ workload tests: topology, tags, shape."""

import pytest

from repro.experiments.common import run_experiment
from repro.workloads.btmz import BTMZ, DEFAULT_ZONE_WORKS


def test_defaults():
    wl = BTMZ()
    assert wl.zone_works == DEFAULT_ZONE_WORKS
    assert wl.iterations == 200
    assert len(wl.rank_specs()) == 4


def test_ring_neighbors():
    wl = BTMZ()
    assert wl.neighbors(0) == [1, 3]
    assert wl.neighbors(1) == [0, 2]
    assert wl.neighbors(3) == [0, 2]


def test_two_rank_ring_degenerates():
    wl = BTMZ(zone_works=[1.0, 2.0])
    assert wl.neighbors(0) == [1]
    assert wl.neighbors(1) == [0]


def test_needs_at_least_two_ranks():
    with pytest.raises(ValueError):
        BTMZ(zone_works=[1.0])


def test_zone_works_are_uneven():
    works = DEFAULT_ZONE_WORKS
    assert works == sorted(works)
    assert works[-1] / works[0] > 3  # the paper's heavy-tail distribution


def test_short_run_utilization_ladder(quiet_kernel):
    res = run_experiment(BTMZ(iterations=10), "cfs", keep_trace=False)
    comps = [res.tasks[f"P{i}"].pct_comp for i in range(1, 5)]
    assert comps == sorted(comps)
    assert comps[3] > 95.0
    assert comps[0] < 30.0


def test_neighbor_sync_not_global(quiet_kernel):
    """With neighbor-only waitall, every rank still completes every
    iteration (no deadlock, tags prevent cross-iteration matches)."""
    res = run_experiment(BTMZ(iterations=5), "cfs", keep_trace=False)
    assert res.exec_time > 0
    # iteration time tracks the slowest rank
    assert res.exec_time == pytest.approx(5 * 94.97 / 200, rel=0.1)


def test_uniform_boosts_heaviest_rank(quiet_kernel):
    res = run_experiment(BTMZ(iterations=12), "uniform", keep_trace=True)
    hist = res.priority_history["P4"]
    assert hist and hist[-1][1] == 6
    assert not res.priority_history["P1"]
