"""Public API surface tests: everything advertised in __all__ exists
and the quickstart from the package docstring actually works."""

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_example():
    baseline = repro.run_experiment(
        repro.MetBench(iterations=3), "cfs", keep_trace=False
    )
    dynamic = repro.run_experiment(
        repro.MetBench(iterations=3), "uniform", keep_trace=False
    )
    assert dynamic.improvement_over(baseline) > 5.0


def test_decode_shares_exported():
    assert repro.decode_shares(6, 2) == (31 / 32, 1 / 32)


def test_machine_and_kernel_compose():
    machine = repro.Machine(repro.MachineTopology(chips=2))
    kernel = repro.Kernel(machine=machine)
    assert len(kernel.rqs) == 8


def test_hwpriority_enum():
    assert int(repro.HWPriority.MEDIUM) == 4
    assert int(repro.HWPriority.HIGH) == 6
