"""Tickless (NOHZ) behaviour and tick accounting."""

import pytest

from repro.kernel import Kernel
from tests.conftest import pure_compute_program


def test_single_task_runs_tickless(quiet_kernel):
    """One runnable task per CPU: the NOHZ optimization must avoid
    per-millisecond ticks (~4800 over 4.8 simulated seconds); only the
    coarse periodic load-balance events remain."""
    k = quiet_kernel
    k.spawn("t", pure_compute_program(10.0), cpu=0)
    end = k.run()
    balance_budget = 4 * end / k.tunables.get("kernel/loadbalance_interval")
    assert k.sim.events_processed < balance_budget + 100
    assert k.sim.events_processed < 1000  # << 4800 ticks


def test_full_ticks_mode_fires_every_period(quiet_kernel):
    k = quiet_kernel
    k.tunables.set("kernel/full_ticks", True)
    k.spawn("t", pure_compute_program(1.0), cpu=0)
    k.run()
    # ~1.0/2.1 seconds at 1ms ticks -> hundreds of events
    assert k.sim.events_processed > 300


def test_competition_enables_ticks(quiet_kernel):
    k = quiet_kernel
    k.spawn("a", pure_compute_program(0.1), cpu=0, cpus_allowed=[0])
    k.spawn("b", pure_compute_program(0.1), cpu=0, cpus_allowed=[0])
    k.run()
    # CFS needs ticks to rotate the two hogs
    assert k.context_switches > 4


def test_tick_accounting_matches_wall_time(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(0.5), cpu=0, cpus_allowed=[0])
    b = k.spawn("b", pure_compute_program(0.5), cpu=0, cpus_allowed=[0])
    end = k.run()
    total = a.sum_exec_runtime + b.sum_exec_runtime
    assert total == pytest.approx(end, rel=0.01)
