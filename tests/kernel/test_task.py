"""Task descriptor unit tests."""

import pytest

from repro.kernel.policies import SchedPolicy, TaskState
from repro.kernel.task import Task


def test_defaults():
    t = Task(pid=1, name="t")
    assert t.state == TaskState.NEW
    assert t.policy == SchedPolicy.NORMAL
    assert t.hw_priority == 4  # the paper's normal priority
    assert t.alive
    assert not t.runnable
    assert not t.is_idle_task


def test_nice_range_validated():
    with pytest.raises(ValueError):
        Task(pid=1, name="t", nice=-21)
    with pytest.raises(ValueError):
        Task(pid=1, name="t", nice=20)


def test_allows_cpu():
    t = Task(pid=1, name="t")
    assert t.allows_cpu(0) and t.allows_cpu(99)
    t2 = Task(pid=2, name="t2", cpus_allowed=[1, 2])
    assert t2.allows_cpu(1) and not t2.allows_cpu(0)


def test_bank_progress_credits_work():
    t = Task(pid=1, name="t")
    t.phase_remaining = 1.0
    t.phase_rate = 2.0
    t.phase_started_at = 0.0
    t.bank_progress(now=0.25)
    assert t.phase_remaining == pytest.approx(0.5)
    assert t.phase_started_at is None
    assert t.phase_rate == 0.0


def test_bank_progress_never_negative():
    t = Task(pid=1, name="t")
    t.phase_remaining = 0.1
    t.phase_rate = 10.0
    t.phase_started_at = 0.0
    t.bank_progress(now=1.0)
    assert t.phase_remaining == 0.0


def test_bank_progress_future_start_is_noop():
    # a phase scheduled to start after a context-switch delay
    t = Task(pid=1, name="t")
    t.phase_remaining = 1.0
    t.phase_rate = 1.0
    t.phase_started_at = 5.0
    t.bank_progress(now=1.0)
    assert t.phase_remaining == pytest.approx(1.0)


def test_cancel_phase_event():
    class Ev:
        cancelled = False

        def cancel(self):
            self.cancelled = True

    t = Task(pid=1, name="t")
    ev = Ev()
    t.phase_event = ev
    t.cancel_phase_event()
    assert ev.cancelled
    assert t.phase_event is None


def test_runnable_states():
    t = Task(pid=1, name="t")
    t.state = TaskState.READY
    assert t.runnable
    t.state = TaskState.RUNNING
    assert t.runnable
    t.state = TaskState.SLEEPING
    assert not t.runnable
    t.state = TaskState.EXITED
    assert not t.alive
