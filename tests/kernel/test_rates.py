"""Quantitative fluid-rate engine tests: exact arithmetic checks of
progress banking across rate changes."""

import pytest

from repro.kernel import Compute, Sleep
from repro.power5.perfmodel import CPU_BOUND, MIXED
from tests.conftest import pure_compute_program

ST = CPU_BOUND.st_speedup  # 2.1
PLUS2 = CPU_BOUND.dprio_speed[2]  # 2.05
MINUS2 = CPU_BOUND.dprio_speed[-2]  # 0.29


def test_exact_completion_time_st_mode(quiet_kernel):
    k = quiet_kernel
    k.spawn("t", pure_compute_program(1.05), cpu=0)
    assert k.run() == pytest.approx(1.05 / ST, rel=1e-9)


def test_exact_rate_rebase_on_sibling_exit(quiet_kernel):
    """Phase 1 at SMT-equal speed until the sibling finishes, phase 2
    in ST mode: completion time is the exact two-segment integral."""
    k = quiet_kernel
    k.spawn("short", pure_compute_program(0.3), cpu=0)
    k.spawn("long", pure_compute_program(1.0), cpu=1)
    end = k.run()
    expected = 0.3 + (1.0 - 0.3) / ST
    assert end == pytest.approx(expected, rel=1e-9)


def test_exact_rebase_on_priority_change_mid_phase(quiet_kernel):
    """Boost a running task halfway through: the remaining work is
    retimed at the new rate, exactly."""
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(1.0), cpu=0)
    b = k.spawn("b", pure_compute_program(10.0), cpu=1)
    boost_at = 0.4
    k.sim.after(boost_at, lambda: k.set_hw_priority(a, 6))
    k.run(until=5.0)
    # a: 0.4 work at speed 1, then (1.0-0.4) at PLUS2
    expected_a_end = boost_at + (1.0 - boost_at * 1.0) / PLUS2
    assert a.sum_exec_runtime == pytest.approx(expected_a_end, rel=1e-9)


def test_victim_slowdown_is_exact(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(10.0), cpu=0)
    b = k.spawn("b", pure_compute_program(0.29), cpu=1)
    k.set_hw_priority(a, 6)  # b at -2 from t=0
    end = k.run(until=2.0)
    # b retires MINUS2 per second while a is busy; its 0.29 units take
    # exactly 1.0s
    assert b.state.value == "exited"
    assert b.sum_exec_runtime == pytest.approx(0.29 / MINUS2, rel=1e-9)


def test_three_segment_timeline(quiet_kernel):
    """SMT-equal, then deprioritized, then ST: all three rates appear
    in one task's phase and the end time is the exact piecewise sum."""
    k = quiet_kernel
    victim = k.spawn("victim", pure_compute_program(1.0), cpu=0)
    other = k.spawn("other", pure_compute_program(0.8), cpu=1)
    # at t=0.2 the sibling gets boosted; it finishes 0.8 work as:
    #   0.2 at speed 1.0 -> 0.6 left at PLUS2 -> done at 0.2 + 0.6/2.05
    k.sim.after(0.2, lambda: k.set_hw_priority(other, 6))
    end = k.run()
    t_other = 0.2 + (0.8 - 0.2) / PLUS2
    # victim: speed 1 for 0.2, MINUS2 until t_other, ST afterwards
    done_before_st = 0.2 * 1.0 + (t_other - 0.2) * MINUS2
    t_victim = t_other + (1.0 - done_before_st) / ST
    assert end == pytest.approx(t_victim, rel=1e-9)


def test_profiles_apply_per_task(quiet_kernel):
    """Two different profiles co-running: each context uses its own
    task's curve."""
    k = quiet_kernel
    cpu_task = k.spawn("c", pure_compute_program(10.0), cpu=0,
                       perf_profile=CPU_BOUND)
    mem_task = k.spawn("m", pure_compute_program(10.0), cpu=1,
                       perf_profile=MIXED)
    k.set_hw_priority(cpu_task, 6)
    k.run(until=1.0)
    k.pmu.finalize(k.now)
    rate_c = k.pmu.context_counters(0).work_done
    rate_m = k.pmu.context_counters(1).work_done
    assert rate_c == pytest.approx(CPU_BOUND.dprio_speed[2], rel=1e-6)
    assert rate_m == pytest.approx(MIXED.dprio_speed[-2], rel=1e-6)


def test_stall_to_rate_zero_then_restart(quiet_kernel):
    """THREAD_OFF stalls a phase (rate 0, no completion owed); restoring
    the priority restarts it with exactly the banked remaining work."""
    from repro.power5.priorities import PrivilegeLevel

    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(0.5), cpu=0)
    b = k.spawn("b", pure_compute_program(10.0), cpu=1)
    off_at, on_at = 0.2, 0.5
    k.sim.after(
        off_at,
        lambda: k.set_hw_priority(a, 0, privilege=PrivilegeLevel.HYPERVISOR),
    )
    k.sim.after(
        on_at,
        lambda: k.set_hw_priority(a, 4, privilege=PrivilegeLevel.HYPERVISOR),
    )
    k.sim.run(until=0.3)
    # Stalled: still RUNNING, but no completion event or ETA is owed.
    assert a.state.value == "running"
    assert a.phase_rate == 0.0
    assert a.phase_event is None and a.phase_eta is None
    k.sim.run(until=5.0)
    # a: 0.2 work at SMT-equal speed 1, a 0.3s stall, then the banked
    # 0.3 remaining work again at speed 1 (b is far from done).
    assert a.state.value == "exited"
    assert a.sum_exec_runtime == pytest.approx(
        on_at + (0.5 - off_at * 1.0) / 1.0, rel=1e-9
    )


def test_speedup_after_slowdown_within_one_phase(quiet_kernel):
    """A slowdown lets the pending completion ride (stale, earlier than
    the true ETA); a speedup before it fires must re-push, and the final
    completion is the exact three-segment integral."""
    k = quiet_kernel
    victim = k.spawn("victim", pure_compute_program(1.0), cpu=0)
    hog = k.spawn("hog", pure_compute_program(50.0), cpu=1)
    slow_at, fast_at = 0.1, 0.3
    k.sim.after(slow_at, lambda: k.set_hw_priority(hog, 6))  # victim at -2
    k.sim.after(fast_at, lambda: k.set_hw_priority(hog, 4))  # back to equal
    k.sim.run(until=0.2)
    # Mid-slowdown: the original event rides ahead of the true ETA.
    assert victim.phase_event is not None
    assert victim.phase_event.time < victim.phase_eta
    k.sim.run(until=10.0)
    assert victim.state.value == "exited"
    done_slow = slow_at * 1.0 + (fast_at - slow_at) * MINUS2
    t_end = fast_at + (1.0 - done_slow) / 1.0
    assert victim.sum_exec_runtime == pytest.approx(t_end, rel=1e-9)


def test_preempt_cancels_stale_ridden_event(quiet_kernel):
    """Preempting a task whose stale (ridden) completion event is still
    in the heap must cancel it; the resumed phase finishes with exactly
    the remaining work and the stale delivery never fires."""
    from repro.kernel.policies import SchedPolicy

    k = quiet_kernel
    victim = k.spawn("victim", pure_compute_program(1.0), cpu=0,
                     cpus_allowed=[0])
    hog = k.spawn("hog", pure_compute_program(50.0), cpu=1)
    k.sim.after(0.1, lambda: k.set_hw_priority(hog, 6))  # ride starts

    def rt_prog():
        yield Compute(0.145)  # 0.05s at MINUS2... RT runs at -2 too

    k.sim.after(
        0.2,
        lambda: k.start_task(
            k.create_task("rt", rt_prog(), policy=SchedPolicy.FIFO,
                          rt_priority=10, cpus_allowed=[0]),
            cpu=0,
        ),
    )
    k.sim.run(until=0.15)
    stale_ev = victim.phase_event
    assert stale_ev is not None and stale_ev.time < victim.phase_eta
    k.sim.run(until=20.0)
    # The ridden event was cancelled at preemption, not delivered.
    assert stale_ev.cancelled
    assert victim.state.value == "exited"
    # victim: 0.1 at speed 1, then MINUS2 until preempted at 0.2, a
    # pause of 0.145/MINUS2 while the RT task runs (also at -2 vs the
    # boosted hog), then MINUS2 again until its work is done.
    rt_window = 0.145 / MINUS2
    done_before = 0.1 * 1.0 + (0.2 - 0.1) * MINUS2
    t_end = 0.2 + rt_window + (1.0 - done_before) / MINUS2
    assert victim.sum_exec_runtime == pytest.approx(
        t_end - rt_window, rel=1e-3
    )


def test_sleep_then_resume_keeps_remaining_work(quiet_kernel):
    """A task preempted mid-phase resumes with exactly the remaining
    work (no loss, no duplication)."""
    k = quiet_kernel
    from repro.kernel.policies import SchedPolicy

    hog = k.spawn("hog", pure_compute_program(0.13), cpu=0, cpus_allowed=[0])
    # an RT task interrupts for a fixed window
    def rt_prog():
        yield Compute(0.05)

    k.sim.after(
        0.02,
        lambda: k.start_task(
            k.create_task("rt", rt_prog(), policy=SchedPolicy.FIFO,
                          rt_priority=10, cpus_allowed=[0]),
            cpu=0,
        ),
    )
    end = k.run()
    # total work on cpu0 = 0.13 + 0.05, all in ST mode, plus two context
    # switches' costs (charged as wall time, not work)
    cs = k.tunables.get("kernel/context_switch_cost")
    expected = (0.13 + 0.05) / ST
    assert end == pytest.approx(expected, rel=1e-3)
    assert hog.sum_exec_runtime + 0.05 / ST == pytest.approx(end, rel=1e-3)
