"""Quantitative fluid-rate engine tests: exact arithmetic checks of
progress banking across rate changes."""

import pytest

from repro.kernel import Compute, Sleep
from repro.power5.perfmodel import CPU_BOUND, MIXED
from tests.conftest import pure_compute_program

ST = CPU_BOUND.st_speedup  # 2.1
PLUS2 = CPU_BOUND.dprio_speed[2]  # 2.05
MINUS2 = CPU_BOUND.dprio_speed[-2]  # 0.29


def test_exact_completion_time_st_mode(quiet_kernel):
    k = quiet_kernel
    k.spawn("t", pure_compute_program(1.05), cpu=0)
    assert k.run() == pytest.approx(1.05 / ST, rel=1e-9)


def test_exact_rate_rebase_on_sibling_exit(quiet_kernel):
    """Phase 1 at SMT-equal speed until the sibling finishes, phase 2
    in ST mode: completion time is the exact two-segment integral."""
    k = quiet_kernel
    k.spawn("short", pure_compute_program(0.3), cpu=0)
    k.spawn("long", pure_compute_program(1.0), cpu=1)
    end = k.run()
    expected = 0.3 + (1.0 - 0.3) / ST
    assert end == pytest.approx(expected, rel=1e-9)


def test_exact_rebase_on_priority_change_mid_phase(quiet_kernel):
    """Boost a running task halfway through: the remaining work is
    retimed at the new rate, exactly."""
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(1.0), cpu=0)
    b = k.spawn("b", pure_compute_program(10.0), cpu=1)
    boost_at = 0.4
    k.sim.after(boost_at, lambda: k.set_hw_priority(a, 6))
    k.run(until=5.0)
    # a: 0.4 work at speed 1, then (1.0-0.4) at PLUS2
    expected_a_end = boost_at + (1.0 - boost_at * 1.0) / PLUS2
    assert a.sum_exec_runtime == pytest.approx(expected_a_end, rel=1e-9)


def test_victim_slowdown_is_exact(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(10.0), cpu=0)
    b = k.spawn("b", pure_compute_program(0.29), cpu=1)
    k.set_hw_priority(a, 6)  # b at -2 from t=0
    end = k.run(until=2.0)
    # b retires MINUS2 per second while a is busy; its 0.29 units take
    # exactly 1.0s
    assert b.state.value == "exited"
    assert b.sum_exec_runtime == pytest.approx(0.29 / MINUS2, rel=1e-9)


def test_three_segment_timeline(quiet_kernel):
    """SMT-equal, then deprioritized, then ST: all three rates appear
    in one task's phase and the end time is the exact piecewise sum."""
    k = quiet_kernel
    victim = k.spawn("victim", pure_compute_program(1.0), cpu=0)
    other = k.spawn("other", pure_compute_program(0.8), cpu=1)
    # at t=0.2 the sibling gets boosted; it finishes 0.8 work as:
    #   0.2 at speed 1.0 -> 0.6 left at PLUS2 -> done at 0.2 + 0.6/2.05
    k.sim.after(0.2, lambda: k.set_hw_priority(other, 6))
    end = k.run()
    t_other = 0.2 + (0.8 - 0.2) / PLUS2
    # victim: speed 1 for 0.2, MINUS2 until t_other, ST afterwards
    done_before_st = 0.2 * 1.0 + (t_other - 0.2) * MINUS2
    t_victim = t_other + (1.0 - done_before_st) / ST
    assert end == pytest.approx(t_victim, rel=1e-9)


def test_profiles_apply_per_task(quiet_kernel):
    """Two different profiles co-running: each context uses its own
    task's curve."""
    k = quiet_kernel
    cpu_task = k.spawn("c", pure_compute_program(10.0), cpu=0,
                       perf_profile=CPU_BOUND)
    mem_task = k.spawn("m", pure_compute_program(10.0), cpu=1,
                       perf_profile=MIXED)
    k.set_hw_priority(cpu_task, 6)
    k.run(until=1.0)
    k.pmu.finalize(k.now)
    rate_c = k.pmu.context_counters(0).work_done
    rate_m = k.pmu.context_counters(1).work_done
    assert rate_c == pytest.approx(CPU_BOUND.dprio_speed[2], rel=1e-6)
    assert rate_m == pytest.approx(MIXED.dprio_speed[-2], rel=1e-6)


def test_sleep_then_resume_keeps_remaining_work(quiet_kernel):
    """A task preempted mid-phase resumes with exactly the remaining
    work (no loss, no duplication)."""
    k = quiet_kernel
    from repro.kernel.policies import SchedPolicy

    hog = k.spawn("hog", pure_compute_program(0.13), cpu=0, cpus_allowed=[0])
    # an RT task interrupts for a fixed window
    def rt_prog():
        yield Compute(0.05)

    k.sim.after(
        0.02,
        lambda: k.start_task(
            k.create_task("rt", rt_prog(), policy=SchedPolicy.FIFO,
                          rt_priority=10, cpus_allowed=[0]),
            cpu=0,
        ),
    )
    end = k.run()
    # total work on cpu0 = 0.13 + 0.05, all in ST mode, plus two context
    # switches' costs (charged as wall time, not work)
    cs = k.tunables.get("kernel/context_switch_cost")
    expected = (0.13 + 0.05) / ST
    assert end == pytest.approx(expected, rel=1e-3)
    assert hog.sum_exec_runtime + 0.05 / ST == pytest.approx(end, rel=1e-3)
