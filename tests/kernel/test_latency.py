"""Wakeup-latency accounting tests."""

import pytest

from repro.kernel.latency import LatencyAccumulator, LatencyStats
from repro.kernel.task import Task


def test_accumulator_streaming():
    acc = LatencyAccumulator()
    assert acc.mean == 0.0
    for v in (1.0, 2.0, 3.0):
        acc.add(v)
    assert acc.count == 3
    assert acc.total == 6.0
    assert acc.mean == 2.0
    assert acc.max == 3.0


def test_stats_per_task_and_overall():
    stats = LatencyStats()
    t1 = Task(pid=1, name="a")
    t2 = Task(pid=2, name="b")
    stats.record(t1, 0.001)
    stats.record(t1, 0.003)
    stats.record(t2, 0.010)
    assert stats.for_task(1).count == 2
    assert stats.for_task(1).max == 0.003
    assert stats.for_task(2).mean == 0.010
    assert stats.overall.count == 3
    assert stats.overall.max == 0.010


def test_unknown_task_returns_empty():
    stats = LatencyStats()
    acc = stats.for_task(42)
    assert acc.count == 0 and acc.mean == 0.0
