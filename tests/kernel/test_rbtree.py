"""Red-black tree tests, including a hypothesis model-based check."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.rbtree import BLACK, RBTree


def test_empty_tree():
    t = RBTree()
    assert len(t) == 0
    assert not t
    assert t.minimum() is None
    assert t.pop_min() is None
    t.check_invariants()


def test_single_insert():
    t = RBTree()
    t.insert(5, "a")
    assert len(t) == 1
    assert t.minimum().value == "a"
    assert t.root.color == BLACK
    t.check_invariants()


def test_insert_ascending_stays_balanced():
    t = RBTree()
    for i in range(100):
        t.insert(i, i)
        t.check_invariants()
    assert [k for k, _ in t.items()] == list(range(100))


def test_insert_descending_stays_balanced():
    t = RBTree()
    for i in reversed(range(100)):
        t.insert(i, i)
    t.check_invariants()
    assert t.minimum().key == 0


def test_pop_min_drains_in_order():
    t = RBTree()
    import random

    rng = random.Random(42)
    keys = list(range(200))
    rng.shuffle(keys)
    for k in keys:
        t.insert(k, k)
    out = []
    while t:
        out.append(t.pop_min().key)
    assert out == list(range(200))


def test_delete_by_handle():
    t = RBTree()
    nodes = {k: t.insert(k, k) for k in range(20)}
    t.delete(nodes[7])
    t.delete(nodes[0])
    t.delete(nodes[19])
    t.check_invariants()
    assert [k for k, _ in t.items()] == [
        k for k in range(20) if k not in (0, 7, 19)
    ]


def test_duplicate_keys_allowed():
    t = RBTree()
    t.insert(1, "a")
    t.insert(1, "b")
    t.insert(1, "c")
    assert len(t) == 3
    t.check_invariants()
    vals = {t.pop_min().value for _ in range(3)}
    assert vals == {"a", "b", "c"}


def test_leftmost_cache_follows_deletions():
    t = RBTree()
    nodes = [t.insert(i, i) for i in range(10)]
    assert t.minimum().key == 0
    t.delete(nodes[0])
    assert t.minimum().key == 1
    t.delete(nodes[1])
    t.delete(nodes[2])
    assert t.minimum().key == 3
    t.check_invariants()


def test_values_iteration():
    t = RBTree()
    for i in (3, 1, 2):
        t.insert(i, i * 10)
    assert list(t.values()) == [10, 20, 30]


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 50)),
        max_size=200,
    )
)
def test_property_model_based_vs_sorted_list(ops):
    """Random interleaved inserts/deletes match a sorted-list model and
    keep all red-black invariants."""
    tree = RBTree()
    model = []  # list of (key, node)
    for op, key in ops:
        if op == "ins":
            node = tree.insert(key, key)
            model.append((key, node))
        elif model:
            idx = key % len(model)
            _, node = model.pop(idx)
            tree.delete(node)
        tree.check_invariants()
        model_keys = sorted(k for k, _ in model)
        assert [k for k, _ in tree.items()] == model_keys
        if model_keys:
            assert tree.minimum().key == model_keys[0]
        else:
            assert tree.minimum() is None


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=100))
def test_property_float_keys(keys):
    tree = RBTree()
    for k in keys:
        tree.insert(k, None)
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == sorted(keys)
