"""Kernel-level fast-forward equivalence and re-arm races.

Every test runs the same scenario twice — fast-forward on and off — and
asserts the *traces are identical* (same scheduler decisions at the same
instants) while the fast-forward run processes fewer events.  The races
pinned here are the ones where a wrong re-arm walk would silently shift
a balance round or a tick:

* witness invalidated at the *exact* instant of an elided chain point
  (both heap orderings: invalidator before and after the chain fire),
* a tunable interval change delivered in the same batched instant as
  the witness-breaking event,
* balance-chain re-arm after ``migrate()`` of a RUNNING task (extends
  PR 4's regression family), including under the detector heuristic.
"""

import pytest

from repro.kernel import Compute, Kernel, Sleep
from repro.kernel.core_sched import EVPRIO_BALANCE, EVPRIO_TICK
from repro.power5.machine import Machine, MachineTopology
from repro.power5.perfmodel import TableDrivenModel
from repro.trace.collector import TraceCollector


def _kernel(fastforward):
    machine = Machine(MachineTopology(), TableDrivenModel())
    return Kernel(
        machine=machine, trace=TraceCollector(), fastforward=fastforward
    )


def _trace_of(k):
    return [(e.time, e.name, e.kind, dict(e.info)) for e in k.trace.events]


def _hog(work=2.0):
    def prog():
        yield Compute(work)

    return prog()


def twin_run(scenario, until=None):
    """Run ``scenario(kernel)`` with fast-forward on and off; assert the
    traces match exactly and return (kernel_on, kernel_off)."""
    kernels = {}
    for ff in (True, False):
        k = _kernel(fastforward=ff)
        scenario(k)
        k.run(until)
        kernels[ff] = k
    on, off = kernels[True], kernels[False]
    assert _trace_of(on) == _trace_of(off)
    assert on.sim.now == off.sim.now
    return on, off


def _balance_points(k, cpu, count):
    """The first ``count`` serial balance-fire instants of ``cpu``'s
    chain, by the same float arithmetic the kernel uses (anchored at the
    first start_task, assumed to happen at t=0)."""
    interval = k.tunables.get("kernel/loadbalance_interval")
    n = len(k.machine.cpu_ids)
    i = k.machine.cpu_ids.index(cpu)
    t = interval * (i + 1) / (n + 1)
    points = [t]
    for _ in range(count - 1):
        t += interval
        points.append(t)
    return points


# ----------------------------------------------------------------------
# Baseline equivalence + elision accounting
# ----------------------------------------------------------------------
def test_saturated_kernel_parks_balance_and_matches_stock():
    # One hog per CPU: nothing queued, so every balance fire is a no-op
    # re-arm — all four chains park and never touch the heap.
    def scenario(k):
        for cpu in k.machine.cpu_ids:
            k.spawn(f"hog{cpu}", _hog(0.5), cpu=cpu)

    on, off = twin_run(scenario)
    assert on.sim.events_processed < off.sim.events_processed
    assert on._ff_balance is not None
    assert on._ff_balance.elided == 0  # parked throughout: nothing walked
    assert on._ff_balance.parked == len(on.machine.cpu_ids)


def test_pinned_tasks_park_via_migratable_witness():
    # Three tasks stacked on cpu0, all pinned: plenty queued, but with
    # no migratable task the balancer provably cannot act.
    def scenario(k):
        for i in range(3):
            k.spawn(f"p{i}", _hog(0.3), cpu=0, cpus_allowed=[0])

    on, off = twin_run(scenario)
    assert on.sim.events_processed < off.sim.events_processed
    assert on.migrations == off.migrations == 0


def test_unpinning_mid_run_unparks_and_balances_identically():
    # Queued pinned work becomes migratable mid-run via set_affinity:
    # the 0→1 migratable edge must re-arm the parked chains so the
    # steal happens at the exact serial balance instant.
    def scenario(k):
        tasks = [
            k.spawn(f"p{i}", _hog(1.0), cpu=0, cpus_allowed=[0])
            for i in range(3)
        ]
        k.sim.at(0.1, lambda: k.set_affinity(tasks[2], None), priority=1)

    on, off = twin_run(scenario)
    assert on.migrations == off.migrations > 0
    assert on.sim.events_processed < off.sim.events_processed


# ----------------------------------------------------------------------
# Race 1: witness invalidated at the exact elided chain point
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "prio", [1, EVPRIO_BALANCE + 3], ids=["before-chain", "after-chain"]
)
def test_witness_broken_exactly_on_chain_point(prio):
    # Four running hogs (queued == 0 → chains parked).  The imbalance
    # lands at exactly cpu0's 4th serial chain point.  With the
    # invalidator *before* the chain fire in heap order (prio 1) the
    # re-armed chain must still fire at that same instant; with it
    # *after* (prio 9) the serial fire preceded it, saw an inert
    # kernel, and the next real fire is one interval later.  Both
    # orderings must replay the stock scheduler bit-for-bit.
    def scenario(k):
        for cpu in k.machine.cpu_ids:
            k.spawn(f"hog{cpu}", _hog(3.0), cpu=cpu)
        t_star = _balance_points(k, cpu=0, count=4)[-1]

        def pile_on():
            # Two extra unpinned tasks on cpu0: imbalance of 2, enough
            # for the periodic balancer to pull one away.
            k.spawn("x0", _hog(1.0), cpu=0)
            k.spawn("x1", _hog(1.0), cpu=0)

        k.sim.at(t_star, pile_on, priority=prio)

    on, off = twin_run(scenario)
    assert on.migrations == off.migrations > 0


# ----------------------------------------------------------------------
# Race 2: tunable interval change in a batched same-instant group
# ----------------------------------------------------------------------
def test_interval_change_and_unpark_in_same_instant_batch():
    # At one instant, in one batch: (a) the balance interval is retimed
    # while every chain is parked, then (b) the witness breaks.  The
    # re-arm walk must use the old interval up to the change instant
    # and the new one after — exactly like the stock chain, which reads
    # the tunable at each fire.
    def scenario(k):
        for cpu in k.machine.cpu_ids:
            k.spawn(f"hog{cpu}", _hog(3.0), cpu=cpu)
        t = 0.1

        def retune():
            k.tunables.set("kernel/loadbalance_interval", 0.016)

        def pile_on():
            k.spawn("x0", _hog(1.0), cpu=0)
            k.spawn("x1", _hog(1.0), cpu=0)

        k.sim.at(t, retune, priority=2)
        k.sim.at(t, pile_on, priority=3)

    on, off = twin_run(scenario)
    assert on.migrations == off.migrations > 0
    assert on.sim.events_processed < off.sim.events_processed


def test_interval_change_while_parked_then_later_unpark():
    # Retime and unpark at *different* instants: parked anchors must be
    # walked with the old interval up to the change, then the new one.
    def scenario(k):
        for cpu in k.machine.cpu_ids:
            k.spawn(f"hog{cpu}", _hog(3.0), cpu=cpu)

        def retune():
            k.tunables.set("kernel/loadbalance_interval", 0.256)

        def pile_on():
            k.spawn("x0", _hog(1.0), cpu=0)
            k.spawn("x1", _hog(1.0), cpu=0)

        k.sim.at(0.05, retune, priority=2)
        k.sim.at(0.9, pile_on, priority=1)

    on, off = twin_run(scenario)
    assert on.migrations == off.migrations > 0


# ----------------------------------------------------------------------
# Race 3: re-arm after migrate() of a RUNNING task
# ----------------------------------------------------------------------
def test_balance_rearm_after_migrating_running_task():
    # All chains parked (queued == 0).  migrate() of a RUNNING task onto
    # a busy CPU creates the first queued task — the enqueue edge inside
    # migrate must re-arm the chains mid-event so the following balance
    # round replays exactly.
    def scenario(k):
        tasks = [
            k.spawn(f"hog{cpu}", _hog(3.0), cpu=cpu)
            for cpu in k.machine.cpu_ids
        ]
        k.sim.at(0.1, lambda: k.migrate(tasks[0], 1), priority=1)

    on, off = twin_run(scenario)
    assert on.migrations == off.migrations >= 2  # the call + a rebalance
    assert on.sim.events_processed < off.sim.events_processed


def test_detector_workload_identical_with_fastforward(monkeypatch):
    # End-to-end through the HPC detector heuristic: same completion
    # table, fewer events.  (The detector itself is wakeup-driven — it
    # owns no timer — so this pins that migrations it triggers unpark
    # the balance chains correctly.)
    from repro.experiments import metbench

    monkeypatch.setenv("REPRO_FASTFORWARD", "1")
    fast = metbench.run_one("adaptive", iterations=4, keep_trace=True)
    monkeypatch.setenv("REPRO_FASTFORWARD", "0")
    stock = metbench.run_one("adaptive", iterations=4, keep_trace=True)
    assert fast.exec_time == stock.exec_time
    assert fast.kernel.migrations == stock.kernel.migrations
    assert (
        fast.kernel.sim.events_processed < stock.kernel.sim.events_processed
    )


# ----------------------------------------------------------------------
# Tick chains (full_ticks mode)
# ----------------------------------------------------------------------
def test_full_ticks_idle_cpus_park_their_tick_chains():
    # One pinned hog on cpu0 in full_ticks mode: cpu0's tick chain is
    # armed (accounting must run), the other CPUs' chains park once
    # their queues go idle — that is where the elision lives.
    def scenario(k):
        k.tunables.set("kernel/full_ticks", True)
        k.spawn("hog", _hog(0.2), cpu=0, cpus_allowed=[0])

    on, off = twin_run(scenario, until=0.25)
    assert on.sim.events_processed < off.sim.events_processed


@pytest.mark.parametrize(
    "prio", [1, EVPRIO_TICK + 1], ids=["before-tick", "after-tick"]
)
def test_wake_on_exact_tick_chain_point(prio):
    # A task lands on an idle CPU at exactly that CPU's parked tick
    # chain point.  prio 1 (< EVPRIO_TICK): the serial tick fires after
    # the wake and must be re-armed at the collided instant; prio 3
    # (> EVPRIO_TICK): the serial tick fired first against an idle CPU
    # (no-op), so the collided point stays elided.
    def scenario(k):
        k.tunables.set("kernel/full_ticks", True)
        period = k.tunables.get("kernel/tick_period")
        # Seed cpu1's tick chain: a short task whose exit leaves the
        # CPU idle and the chain parked, with points at i*period from 0.
        k.spawn("seed", _hog(period * 2.5), cpu=1, cpus_allowed=[1])
        t = 0.0
        while t < period * 7:  # a parked point well past seed's exit
            t += period
        k.sim.at(
            t,
            lambda: k.spawn("late", _hog(period * 3), cpu=1, cpus_allowed=[1]),
            priority=prio,
        )

    on, off = twin_run(scenario, until=0.02)
    assert on.sim.events_processed <= off.sim.events_processed
