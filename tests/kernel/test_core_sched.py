"""Scheduler-core behaviour: task lifecycle, execution, blocking,
preemption across classes, context switches, accounting."""

import pytest

from repro.kernel import Compute, Exit, Kernel, SchedPolicy, Sleep
from repro.kernel.policies import TaskState
from repro.kernel.syscalls import SetNice, SetScheduler, YieldCPU
from repro.power5.machine import Machine, MachineTopology
from repro.power5.perfmodel import CPU_BOUND, TableDrivenModel
from tests.conftest import compute_sleep_program, pure_compute_program


def test_task_runs_and_exits(quiet_kernel):
    k = quiet_kernel
    t = k.spawn("t", pure_compute_program(0.5), cpu=0)
    end = k.run()
    assert t.state == TaskState.EXITED
    # alone on its core: ST speedup applies
    assert end == pytest.approx(0.5 / CPU_BOUND.st_speedup, rel=1e-6)


def test_compute_time_scales_with_smt_corun(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(1.0), cpu=0)
    b = k.spawn("b", pure_compute_program(1.0), cpu=1)
    end = k.run()
    # co-running at equal priority: both at speed 1.0 -> 1.0s
    assert end == pytest.approx(1.0, rel=1e-6)


def test_different_cores_dont_interfere(quiet_kernel):
    k = quiet_kernel
    k.spawn("a", pure_compute_program(1.0), cpu=0)
    k.spawn("b", pure_compute_program(1.0), cpu=2)
    end = k.run()
    # separate cores: both in ST mode
    assert end == pytest.approx(1.0 / CPU_BOUND.st_speedup, rel=1e-6)


def test_sleep_blocks_and_wakes(quiet_kernel):
    k = quiet_kernel
    t = k.spawn("t", compute_sleep_program(2, 0.1, pause=0.5), cpu=0)
    end = k.run()
    assert t.state == TaskState.EXITED
    expected = 2 * (0.1 / CPU_BOUND.st_speedup + 0.5)
    assert end == pytest.approx(expected, rel=1e-4)


def test_sibling_idle_gives_st_speed_mid_run(quiet_kernel):
    """When the sibling finishes, the survivor speeds up (fluid rates)."""
    k = quiet_kernel
    k.spawn("short", pure_compute_program(0.5), cpu=0)
    k.spawn("long", pure_compute_program(2.0), cpu=1)
    end = k.run()
    expected = 0.5 + (2.0 - 0.5) / CPU_BOUND.st_speedup
    assert end == pytest.approx(expected, rel=1e-6)


def test_two_tasks_one_cpu_timeshare(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(0.05), cpu=0, cpus_allowed=[0])
    b = k.spawn("b", pure_compute_program(0.05), cpu=0, cpus_allowed=[0])
    end = k.run()
    assert a.state == b.state == TaskState.EXITED
    # serialized on one context in ST mode (sibling idle)
    assert end == pytest.approx(0.1 / CPU_BOUND.st_speedup, rel=0.05)
    assert k.context_switches >= 2


def test_sum_exec_runtime_accounts_occupancy(quiet_kernel):
    k = quiet_kernel
    t = k.spawn("t", pure_compute_program(1.0), cpu=0)
    end = k.run()
    assert t.sum_exec_runtime == pytest.approx(end, rel=1e-6)


def test_hw_priority_biases_corunners(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(1.0), cpu=0)
    b = k.spawn("b", pure_compute_program(1.0), cpu=1)
    k.set_hw_priority(a, 6)
    k.run()
    # a (prio 6) must finish well before b (prio 4)
    assert a.sum_exec_runtime < b.sum_exec_runtime


def test_set_hw_priority_requires_privilege(quiet_kernel):
    from repro.power5.priorities import PriorityError, PrivilegeLevel

    k = quiet_kernel
    t = k.create_task("t", pure_compute_program(1.0))
    with pytest.raises(PriorityError):
        k.set_hw_priority(t, 6, privilege=PrivilegeLevel.USER)
    k.set_hw_priority(t, 4, privilege=PrivilegeLevel.USER)  # allowed
    assert t.hw_priority == 4


def test_priority_restored_on_context_switch(quiet_kernel):
    """A task's hw priority survives being scheduled out and back in."""
    k = quiet_kernel

    def prog():
        yield Compute(0.01)
        yield Sleep(0.01)
        yield Compute(0.01)

    t = k.spawn("t", prog(), cpu=0)
    k.set_hw_priority(t, 6)
    k.run()
    assert t.hw_priority == 6
    assert k.machine.context(0).priority == 1  # idle snooze at the end


def test_exit_request(quiet_kernel):
    k = quiet_kernel

    def prog():
        yield Compute(0.01)
        yield Exit()
        yield Compute(100.0)  # never reached

    t = k.spawn("t", prog(), cpu=0)
    end = k.run()
    assert t.state == TaskState.EXITED
    assert end < 1.0


def test_on_exit_callback(quiet_kernel):
    k = quiet_kernel
    done = []
    t = k.create_task("t", pure_compute_program(0.01))
    t.on_exit = lambda task: done.append(task.pid)
    k.start_task(t, cpu=0)
    k.run()
    assert done == [t.pid]


def test_empty_program_exits_immediately(quiet_kernel):
    k = quiet_kernel

    def prog():
        return
        yield  # pragma: no cover

    t = k.spawn("t", prog(), cpu=0)
    k.run()
    assert t.state == TaskState.EXITED


def test_zero_work_compute_skipped(quiet_kernel):
    k = quiet_kernel

    def prog():
        yield Compute(0.0)
        yield Compute(0.1)

    t = k.spawn("t", prog(), cpu=0)
    end = k.run()
    assert end == pytest.approx(0.1 / CPU_BOUND.st_speedup, rel=1e-6)


def test_daemon_tasks_dont_block_termination(quiet_kernel):
    k = quiet_kernel

    def forever():
        while True:
            yield Compute(0.01)
            yield Sleep(0.01)

    k.spawn("daemon", forever(), cpu=1, daemon=True)
    k.spawn("worker", pure_compute_program(0.1), cpu=0)
    end = k.run()
    assert end < 1.0  # stopped when the worker exited


def test_setscheduler_moves_class(quiet_kernel):
    k = quiet_kernel

    def prog():
        yield SetScheduler(SchedPolicy.FIFO, rt_priority=10)
        yield Compute(0.05)

    t = k.spawn("t", prog(), cpu=0)
    k.run()
    assert t.policy == SchedPolicy.FIFO
    assert t.rt_priority == 10


def test_rt_preempts_normal(quiet_kernel):
    k = quiet_kernel
    normal = k.spawn("n", pure_compute_program(0.2), cpu=0, cpus_allowed=[0])

    def rt_prog():
        yield Compute(0.05)

    k.sim.after(0.01, lambda: k.start_task(
        k.create_task("rt", rt_prog(), policy=SchedPolicy.FIFO, rt_priority=50,
                      cpus_allowed=[0]),
        cpu=0,
    ))
    k.run()
    # RT task must have preempted: normal saw a READY gap
    assert k.context_switches >= 3


def test_yield_reorders_equal_tasks(quiet_kernel):
    k = quiet_kernel
    order = []

    def looper(name):
        def prog():
            for _ in range(3):
                order.append(name)
                yield Compute(0.001)
                yield YieldCPU()

        return prog()

    k.spawn("a", looper("a"), cpu=0, cpus_allowed=[0],
            policy=SchedPolicy.FIFO, rt_priority=5)
    k.spawn("b", looper("b"), cpu=0, cpus_allowed=[0],
            policy=SchedPolicy.FIFO, rt_priority=5)
    k.run()
    # with yields, execution interleaves instead of a-a-a-b-b-b
    assert order[:4] == ["a", "b", "a", "b"]


def test_set_nice(quiet_kernel):
    k = quiet_kernel

    def prog():
        yield SetNice(10)
        yield Compute(0.01)

    t = k.spawn("t", prog(), cpu=0)
    k.run()
    assert t.nice == 10


def test_migrate_queued_task(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(0.5), cpu=0)
    b = k.spawn("b", pure_compute_program(0.5), cpu=0)  # queued behind a
    assert b.state == TaskState.READY
    k.migrate(b, 2)
    assert b.cpu == 2
    k.run()
    assert k.migrations >= 1


def test_migrate_running_task(quiet_kernel):
    """Migrating a RUNNING task switches it out (progress banked, phase
    event dropped), refills the source CPU and lands it on the target."""
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(0.5), cpu=0)
    k.sim.run(until=0.01)
    assert a.state == TaskState.RUNNING
    before = a.phase_remaining
    k.migrate(a, 2)
    # Progress up to the migration instant was banked and the stale
    # completion event cancelled with the task off-CPU.
    assert a.state == TaskState.READY
    assert a.cpu == 2
    assert a.phase_remaining < before
    assert a.phase_event is None and a.phase_eta is None
    assert k.rqs[0].current is not a
    assert k.migrations == 1
    end = k.run()
    assert a.state == TaskState.EXITED
    # No work lost or duplicated: cpu2 runs in the same ST mode as cpu0,
    # so the run finishes when an unmigrated control run does, plus the
    # one extra context switch the migration itself costs.
    machine = Machine(MachineTopology(), TableDrivenModel())
    control = Kernel(machine=machine)
    control.spawn("a", pure_compute_program(0.5), cpu=0)
    cs = k.tunables.get("kernel/context_switch_cost")
    assert end == pytest.approx(control.run() + cs, rel=1e-9)


def test_migrate_sleeping_task_rejected(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", compute_sleep_program(2, 0.05, pause=1.0), cpu=0)
    k.sim.run(until=0.1)  # inside the first sleep
    assert a.state == TaskState.SLEEPING
    with pytest.raises(ValueError):
        k.migrate(a, 2)


def test_affinity_violation_rejected(quiet_kernel):
    k = quiet_kernel
    t = k.create_task("t", pure_compute_program(0.1), cpus_allowed=[0, 1])
    with pytest.raises(ValueError):
        k.start_task(t, cpu=3)


def test_start_twice_rejected(quiet_kernel):
    k = quiet_kernel
    t = k.create_task("t", pure_compute_program(0.1))
    k.start_task(t, cpu=0)
    with pytest.raises(ValueError):
        k.start_task(t, cpu=0)


def test_wake_up_non_sleeping_is_noop(quiet_kernel):
    k = quiet_kernel
    t = k.spawn("t", pure_compute_program(0.1), cpu=0)
    assert k.wake_up(t) is False


def test_unknown_policy_without_class(quiet_kernel):
    k = quiet_kernel
    t = k.create_task("t", pure_compute_program(0.1), policy=SchedPolicy.HPC)
    with pytest.raises(ValueError, match="HPC"):
        k.start_task(t, cpu=0)


def test_wakeup_latency_recorded(quiet_kernel):
    k = quiet_kernel
    t = k.spawn("t", compute_sleep_program(3, 0.01, pause=0.02), cpu=0)
    k.run()
    acc = k.latency_stats.for_task(t.pid)
    assert acc.count >= 3
    assert acc.mean >= 0.0


def test_run_until_horizon(quiet_kernel):
    k = quiet_kernel
    t = k.spawn("t", pure_compute_program(10.0), cpu=0)
    end = k.run(until=0.5)
    assert end == pytest.approx(0.5)
    assert t.state == TaskState.RUNNING
