"""Per-class CPU accounting tests."""

import pytest

from repro.hpcsched import attach_hpcsched
from repro.kernel.cpuacct import class_cpu_share, class_cpu_time, task_cpu_time
from repro.kernel.policies import SchedPolicy
from tests.conftest import pure_compute_program


def test_class_cpu_time_groups_by_policy(quiet_kernel):
    k = quiet_kernel
    attach_hpcsched(k)
    k.spawn("hpc_task", pure_compute_program(0.2), cpu=0,
            policy=SchedPolicy.HPC)
    k.spawn("normal_task", pure_compute_program(0.1), cpu=2)
    k.spawn("rt_task", pure_compute_program(0.05), cpu=3,
            policy=SchedPolicy.FIFO, rt_priority=10)
    k.run()
    times = class_cpu_time(k)
    assert times["hpc"] > times["fair"] > times["rt"] > 0
    assert times["idle"] == 0.0


def test_class_cpu_share_sums_to_one(quiet_kernel):
    k = quiet_kernel
    k.spawn("a", pure_compute_program(0.1), cpu=0)
    k.spawn("b", pure_compute_program(0.1), cpu=2)
    k.run()
    shares = class_cpu_share(k)
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["fair"] == pytest.approx(1.0)


def test_class_cpu_share_empty_kernel(quiet_kernel):
    shares = class_cpu_share(quiet_kernel)
    assert all(v == 0.0 for v in shares.values())


def test_task_cpu_time(quiet_kernel):
    k = quiet_kernel
    t = k.spawn("worker", pure_compute_program(0.21), cpu=0)
    end = k.run()
    per_task = task_cpu_time(k)
    assert per_task["worker"] == pytest.approx(end, rel=1e-9)


def test_hpc_starves_daemons_quantified(quiet_kernel):
    """The extrinsic-shield claim, in cpuacct terms: with an HPC hog
    and a CFS daemon sharing a CPU, the daemon's share collapses while
    the HPC task is runnable."""
    from repro.kernel.syscalls import Compute, Sleep

    k = quiet_kernel
    attach_hpcsched(k)

    def daemon():
        while True:
            yield Compute(0.005)
            yield Sleep(0.005)

    k.spawn("daemon", daemon(), cpu=0, cpus_allowed=[0], daemon=True)
    k.spawn("hog", pure_compute_program(0.5), cpu=0,
            policy=SchedPolicy.HPC, cpus_allowed=[0])
    k.run()
    times = class_cpu_time(k)
    assert times["fair"] < 0.05 * times["hpc"]
