"""Property-based kernel tests: random task populations must preserve
global invariants (work conservation, fairness, state consistency)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.common import build_kernel
from repro.kernel.procfs import consistency_check
from repro.kernel.syscalls import Compute, Sleep


def compute_sleep(works):
    def prog():
        for w, s in works:
            yield Compute(w)
            yield Sleep(s)

    return prog()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 3),  # cpu
            st.lists(
                st.tuples(
                    st.floats(min_value=0.001, max_value=0.05),
                    st.floats(min_value=0.0, max_value=0.02),
                ),
                min_size=1,
                max_size=3,
            ),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_random_populations_conserve_work_and_terminate(tasks):
    """Any mix of pinned compute/sleep tasks must (a) terminate, (b)
    retire exactly the work submitted, (c) never violate runqueue
    invariants, and (d) account occupancy == busy wall time."""
    kernel = build_kernel()
    handles = []
    for i, (cpu, works) in enumerate(tasks):
        handles.append(
            kernel.spawn(
                f"t{i}", compute_sleep(works), cpu=cpu, cpus_allowed=[cpu]
            )
        )
    end = kernel.run()
    assert consistency_check(kernel) == []
    assert all(not t.alive for t in handles)

    # Work conservation through the PMU: total retired work equals the
    # submitted work (the fluid engine must not lose or invent work).
    # The PMU attributes context-switch windows to the incoming task
    # (like a real PMU counting pipeline-restart cycles), so allow that
    # bounded overcount.
    submitted = sum(w for _, works in tasks for w, _ in works)
    retired = sum(
        kernel.pmu.context_counters(c).work_done
        for c in kernel.machine.cpu_ids
    )
    cs_cost = kernel.tunables.get("kernel/context_switch_cost")
    slack = kernel.context_switches * cs_cost * 2.2 + 1e-9
    assert submitted - 1e-9 <= retired <= submitted + slack

    # Occupancy == PMU busy time, per context.
    for cpu in kernel.machine.cpu_ids:
        busy = kernel.pmu.context_counters(cpu).busy_time
        occupancy = sum(
            t.sum_exec_runtime for t in handles if t.cpu == cpu
        )
        # tasks may migrate only if unpinned; here they are pinned
        assert busy == pytest.approx(occupancy, rel=1e-6, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=0.1), min_size=2, max_size=5),
    st.integers(0, 1_000_000),
)
def test_equal_cfs_tasks_share_one_cpu_fairly(works, seed):
    """N equal-nice busy tasks on one CPU each receive ~1/N of the CPU
    over a window much longer than the scheduling latency."""
    kernel = build_kernel()
    tasks = [
        kernel.spawn(
            f"t{i}",
            compute_sleep([(10.0, 0.0)]),
            cpu=0,
            cpus_allowed=[0],
        )
        for i in range(len(works))
    ]
    horizon = 2.0
    kernel.run(until=horizon)
    runtimes = [t.sum_exec_runtime for t in tasks]
    expect = horizon / len(tasks)
    for rt in runtimes:
        assert rt == pytest.approx(expect, rel=0.25)


def test_sleep_wake_storm_consistency():
    """Many tasks blinking on one CPU: invariants hold throughout."""
    kernel = build_kernel()
    for i in range(10):
        kernel.spawn(
            f"blink{i}",
            compute_sleep([(0.002, 0.003)] * 20),
            cpu=i % 4,
        )
    for horizon in (0.01, 0.03, 0.06, 0.09):
        kernel.sim.run(until=horizon)
        assert consistency_check(kernel) == []
    kernel.run()
    assert consistency_check(kernel) == []
