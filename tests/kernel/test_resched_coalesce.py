"""Slotted resched coalescing (accelerated core) and the
``Simulator.defer`` drain-ordering contract underneath it.

``resched()`` is the same-slot collapse: any number of reschedule
requests for one CPU within one delivery slot share a single canonical
event (the dedup guard on ``rq.resched_event``).  On the accelerated
core the direct-``__schedule`` paths (exit/block/migrate) additionally
*cancel* a still-pending canonical event — it would deliver as a
``need_resched=False`` no-op — and the deferred rate recompute must
observe the instant's final state at the boundary of the event that did
the scheduling, not ride on the elided duplicate.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.policies import TaskState
from repro.power5.machine import Machine, MachineTopology
from repro.power5.perfmodel import TableDrivenModel
from repro.simcore.engine import Simulator
from tests.conftest import pure_compute_program


def _kernel(core):
    machine = Machine(MachineTopology(), TableDrivenModel())
    return Kernel(machine=machine, sim=Simulator(core=core))


def _pending_rescheds(sim, cpu):
    label = f"resched/{cpu}"
    return [ev for _, ev in sim.queue.iter_entries() if ev.label == label]


@pytest.mark.parametrize("core", ["heap", "fast"])
def test_same_slot_rescheds_collapse_to_one_event(core):
    k = _kernel(core)
    k.spawn("a", pure_compute_program(0.5), cpu=0)
    k.spawn("b", pure_compute_program(0.5), cpu=0)

    observed = {}

    def storm():
        for _ in range(5):
            k.resched(0)
        observed["pending"] = len(_pending_rescheds(k.sim, 0))

    k.sim.at(0.01, storm, priority=1)
    k.sim.run(until=0.02)
    assert observed["pending"] == 1


@pytest.mark.parametrize("core", ["heap", "fast"])
def test_coalesce_gate_follows_core(core):
    assert _kernel(core)._coalesce_resched is (core == "fast")


def test_direct_schedule_cancels_pending_duplicate_fastcore():
    """migrate() on a running task reaches __schedule directly; a
    resched event pending for the same slot is the elided duplicate —
    the fast core cancels it and it never fires."""
    k = _kernel("fast")
    a = k.spawn("a", pure_compute_program(0.5), cpu=0)

    fires = []
    orig_fire = k._resched_fire
    k._resched_fire = lambda cpu: (fires.append(cpu), orig_fire(cpu))[1]

    seen = {}

    def provoke():
        fires.clear()  # drop boot-time rescheds; watch this slot only
        k.resched(0)
        dup = k.rqs[0].resched_event
        assert dup is not None and not dup.cancelled
        k.migrate(a, 2)  # RUNNING task: direct _schedule(0) inside
        seen["dup_cancelled"] = dup.cancelled
        seen["slot_cleared"] = k.rqs[0].resched_event is not dup
        seen["fires_in_handler"] = list(fires)

    k.sim.at(0.01, provoke, priority=1)
    k.sim.run(until=0.02)
    assert seen["dup_cancelled"] is True
    assert seen["slot_cleared"] is True
    # A fresh resched may legitimately re-arm during/after the direct
    # __schedule, but the cancelled duplicate itself never delivers —
    # at most one post-handler fire per CPU (the re-armed canonical).
    assert not seen["fires_in_handler"]
    assert fires.count(0) <= 1
    assert a.cpu == 2 and a.state in (TaskState.READY, TaskState.RUNNING)


def test_heap_core_delivers_duplicate_as_noop():
    """The heap core keeps the duplicate (lazy deletion gains nothing
    from a cancel); it must deliver exactly once as a no-op."""
    k = _kernel("heap")
    a = k.spawn("a", pure_compute_program(0.5), cpu=0)

    fires = []
    orig_fire = k._resched_fire
    k._resched_fire = lambda cpu: (fires.append((cpu, k.rqs[cpu].need_resched)), orig_fire(cpu))[1]

    def provoke():
        k.resched(0)
        k.migrate(a, 2)

    k.sim.at(0.01, provoke, priority=1)
    k.sim.run(until=0.02)
    # cpu0's duplicate fired with need_resched already consumed.
    assert (0, False) in fires


@pytest.mark.parametrize("core", ["heap", "fast"])
def test_deferred_rate_drain_observes_coalesced_event(core):
    """The rate recompute deferred during the coalescing __schedule must
    drain at the boundary of the event that scheduled (before the clock
    moves and before any duplicate's slot), seeing the final SMT state
    of the instant."""
    k = _kernel(core)
    a = k.spawn("a", pure_compute_program(0.5), cpu=0)

    order = []
    orig_drain = k._drain_rate_changes

    def drain():
        order.append(("drain", k.sim.now, len(k._dirty_cores)))
        orig_drain()

    k._drain_rate_changes = drain

    def provoke():
        k.resched(0)
        k.migrate(a, 2)
        order.append(("handler-done", k.sim.now))

    k.sim.at(0.01, provoke, priority=1)
    k.sim.run(until=0.02)
    # The drain ran exactly at the provoking event's boundary: same
    # instant, immediately after the handler returned, with the dirty
    # set intact (not flushed early by the elided duplicate's slot).
    idx = order.index(("handler-done", 0.01))
    assert order[idx + 1][0] == "drain"
    assert order[idx + 1][1] == 0.01
    assert order[idx + 1][2] > 0
    assert k._dirty_cores == {}  # fully drained before the clock moved


def test_twin_run_migrate_under_pending_resched_identical():
    """End-to-end equivalence of the coalesced path: identical final
    clock and context-switch counts on both cores."""
    results = {}
    for core in ("heap", "fast"):
        k = _kernel(core)
        a = k.spawn("a", pure_compute_program(0.3), cpu=0)
        k.spawn("b", pure_compute_program(0.3), cpu=0)

        def provoke(k=k, a=a):
            k.resched(0)
            k.migrate(a, 2)

        k.sim.at(0.01, provoke, priority=1)
        end = k.run()
        results[core] = (end, k.context_switches, k.migrations)
    assert results["heap"] == results["fast"]
