"""Request-object validation tests."""

import pytest

from repro.kernel.policies import SchedPolicy
from repro.kernel.syscalls import (
    Compute,
    Exit,
    SetAffinity,
    SetNice,
    SetScheduler,
    Sleep,
)


def test_compute_rejects_negative():
    with pytest.raises(ValueError):
        Compute(-1.0)
    assert Compute(0.0).work == 0.0


def test_sleep_rejects_negative():
    with pytest.raises(ValueError):
        Sleep(-0.1)


def test_sleep_zero_continues_immediately(quiet_kernel):
    k = quiet_kernel

    def prog():
        yield Sleep(0.0)
        yield Compute(0.01)

    t = k.spawn("t", prog(), cpu=0)
    end = k.run()
    assert end < 0.1


def test_setscheduler_validates_rt_priority():
    with pytest.raises(ValueError):
        SetScheduler(SchedPolicy.FIFO, rt_priority=0)
    SetScheduler(SchedPolicy.NORMAL)  # no rt priority required
    SetScheduler(SchedPolicy.HPC)


def test_setnice_range():
    with pytest.raises(ValueError):
        SetNice(-21)
    with pytest.raises(ValueError):
        SetNice(20)
    assert SetNice(0).nice == 0


def test_setaffinity_applies(quiet_kernel):
    k = quiet_kernel

    def prog():
        yield SetAffinity([2, 3])
        yield Compute(0.05)

    t = k.spawn("t", prog(), cpu=0)
    k.run()
    assert t.cpus_allowed == {2, 3}


def test_setaffinity_migrates_running_task(quiet_kernel):
    """A running task excluding its own CPU must actually move there at
    the next reschedule, not be re-queued in place."""
    k = quiet_kernel

    def prog():
        yield Compute(0.01)
        yield SetAffinity([3])
        yield Compute(0.05)

    t = k.spawn("t", prog(), cpu=0)
    k.run()
    assert t.cpu == 3
    assert k.migrations >= 1


def test_setaffinity_none_clears(quiet_kernel):
    k = quiet_kernel

    def prog():
        yield SetAffinity(None)
        yield Compute(0.01)

    t = k.spawn("t", prog(), cpu=0, cpus_allowed=[0])
    k.run()
    assert t.cpus_allowed is None


def test_sleep_reason_labels():
    assert Sleep(0.1).sleep_reason == "sleep"
    assert SetScheduler(SchedPolicy.HPC).sleep_reason == "setscheduler"


def test_requests_not_marked_as_mpi_waits():
    assert not Sleep(0.1).is_wait
    assert not Compute(1.0).__class__.__dict__.get("is_wait", False)
