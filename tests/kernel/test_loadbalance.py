"""Load-balancer tests: CPU selection, idle pull, periodic balance."""

import pytest

from repro.kernel import Compute, Kernel, Sleep
from repro.kernel.policies import TaskState
from tests.conftest import pure_compute_program


def test_select_cpu_prefers_idle_prev(quiet_kernel):
    k = quiet_kernel
    t = k.create_task("t", pure_compute_program(0.1))
    t.cpu = 2
    assert k.balancer.select_cpu(t, prefer=2) == 2


def test_select_cpu_least_loaded(quiet_kernel):
    k = quiet_kernel
    k.spawn("a", pure_compute_program(1.0), cpu=0)
    k.spawn("b", pure_compute_program(1.0), cpu=1)
    t = k.create_task("t", pure_compute_program(0.1))
    assert k.balancer.select_cpu(t) in (2, 3)


def test_select_cpu_respects_affinity(quiet_kernel):
    k = quiet_kernel
    k.spawn("a", pure_compute_program(1.0), cpu=3)
    t = k.create_task("t", pure_compute_program(0.1), cpus_allowed=[3])
    assert k.balancer.select_cpu(t) == 3


def test_select_cpu_empty_mask_raises(quiet_kernel):
    k = quiet_kernel
    t = k.create_task("t", pure_compute_program(0.1), cpus_allowed=[])
    with pytest.raises(ValueError):
        k.balancer.select_cpu(t)


def test_fork_balancing_spreads_tasks(quiet_kernel):
    """Unpinned spawns land on distinct CPUs."""
    k = quiet_kernel
    tasks = [k.spawn(f"t{i}", pure_compute_program(0.5)) for i in range(4)]
    cpus = {t.cpu for t in tasks}
    assert cpus == {0, 1, 2, 3}


def test_idle_pull_steals_queued_task(quiet_kernel):
    k = quiet_kernel
    # two tasks stacked on cpu0, cpu2 idle
    a = k.spawn("a", pure_compute_program(0.5), cpu=0)
    b = k.spawn("b", pure_compute_program(0.5), cpu=0)
    assert b.state == TaskState.READY
    pulled = k.balancer.idle_pull(2)
    assert pulled is b
    assert b.cpu == 2


def test_idle_pull_nothing_to_steal(quiet_kernel):
    k = quiet_kernel
    k.spawn("a", pure_compute_program(0.5), cpu=0)
    assert k.balancer.idle_pull(2) is None


def test_idle_pull_respects_affinity(quiet_kernel):
    k = quiet_kernel
    k.spawn("a", pure_compute_program(0.5), cpu=0, cpus_allowed=[0])
    k.spawn("b", pure_compute_program(0.5), cpu=0, cpus_allowed=[0])
    assert k.balancer.idle_pull(2) is None


def test_periodic_needs_bigger_imbalance(quiet_kernel):
    k = quiet_kernel
    k.spawn("a", pure_compute_program(0.5), cpu=0)
    k.spawn("b", pure_compute_program(0.5), cpu=1)
    # diff of 1: periodic balance must not thrash
    assert k.balancer.periodic(2) is None


def test_overload_resolves_via_scheduling(quiet_kernel):
    """Three unpinned hogs + one short task: everyone finishes, and the
    balancer spreads the runnable tasks across CPUs."""
    k = quiet_kernel
    tasks = [k.spawn(f"t{i}", pure_compute_program(0.3)) for i in range(6)]
    k.run()
    assert all(t.state == TaskState.EXITED for t in tasks)


def test_migratable_census_tracks_masks(quiet_kernel):
    """``_migratable`` counts started tasks whose mask allows >1 CPU —
    the sharded runner's proof obligation for parking balance timers."""
    k = quiet_kernel
    assert k._migratable == 0
    pinned = k.spawn("p", pure_compute_program(0.2), cpu=0, cpus_allowed=[0])
    assert k._migratable == 0
    free = k.spawn("f", pure_compute_program(0.2), cpu=1)
    assert k._migratable == 1
    # Pinning the free task drops the census; widening restores it.
    k.set_affinity(free, {1})
    assert k._migratable == 0
    k.set_affinity(free, {0, 1})
    assert k._migratable == 1
    k.set_affinity(pinned, None)
    assert k._migratable == 2
    k.run()
    assert k._migratable == 0


def test_migratable_zero_to_one_edge_fires_hook(quiet_kernel):
    k = quiet_kernel
    edges = []
    k.on_migratable = lambda: edges.append(k._migratable)
    k.spawn("p", pure_compute_program(0.2), cpu=0, cpus_allowed=[0])
    assert edges == []
    k.spawn("f", pure_compute_program(0.2), cpu=1)
    assert edges == [1]
    k.spawn("g", pure_compute_program(0.2), cpu=2)
    assert edges == [1]  # only the 0 -> 1 edge fires
