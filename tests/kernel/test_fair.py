"""CFS class tests: weights, vruntime, fairness, wakeup preemption."""

import pytest

from repro.kernel import Compute, Kernel, Sleep
from repro.kernel.fair import NICE_0_LOAD, PRIO_TO_WEIGHT, nice_to_weight
from repro.kernel.policies import TaskState
from tests.conftest import compute_sleep_program, pure_compute_program


def test_weight_table_is_the_kernels():
    assert len(PRIO_TO_WEIGHT) == 40
    assert nice_to_weight(0) == 1024
    assert nice_to_weight(-20) == 88761
    assert nice_to_weight(19) == 15
    # each nice level ~ +-10% CPU -> ratio ~1.25 between neighbours
    for nice in range(-20, 19):
        ratio = nice_to_weight(nice) / nice_to_weight(nice + 1)
        assert 1.15 < ratio < 1.35


def test_equal_nice_share_cpu_fairly(quiet_kernel):
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(0.5), cpu=0, cpus_allowed=[0])
    b = k.spawn("b", pure_compute_program(0.5), cpu=0, cpus_allowed=[0])
    k.run(until=0.4)
    assert a.sum_exec_runtime == pytest.approx(b.sum_exec_runtime, rel=0.15)


def test_nice_biases_cpu_shares(quiet_kernel):
    k = quiet_kernel
    fav = k.spawn("fav", pure_compute_program(5.0), cpu=0, cpus_allowed=[0], nice=-5)
    vic = k.spawn("vic", pure_compute_program(5.0), cpu=0, cpus_allowed=[0], nice=5)
    k.run(until=1.0)
    ratio = fav.sum_exec_runtime / max(vic.sum_exec_runtime, 1e-9)
    expect = nice_to_weight(-5) / nice_to_weight(5)
    assert ratio == pytest.approx(expect, rel=0.35)


def test_vruntime_advances_slower_for_heavy_tasks(quiet_kernel):
    k = quiet_kernel
    heavy = k.spawn("h", pure_compute_program(1.0), cpu=0, cpus_allowed=[0], nice=-10)
    light = k.spawn("l", pure_compute_program(1.0), cpu=0, cpus_allowed=[0], nice=10)
    k.run(until=0.5)
    # same wall window; the heavy task ran more yet its vruntime is lower
    assert heavy.sum_exec_runtime > light.sum_exec_runtime
    assert heavy.vruntime <= light.vruntime * 1.1


def test_sleeper_gets_bounded_credit(quiet_kernel):
    """A long sleeper must not return with an ancient vruntime and
    starve the queue; placement floors it at min_vruntime - latency."""
    k = quiet_kernel
    hog = k.spawn("hog", pure_compute_program(2.0), cpu=0, cpus_allowed=[0])

    def sleeper_prog():
        yield Sleep(1.0)
        yield Compute(0.5)

    sleeper = k.spawn("sleeper", sleeper_prog(), cpu=0, cpus_allowed=[0])
    k.run(until=1.5)
    latency = k.tunables.get("kernel/sched_latency")
    # after waking, the sleeper's vruntime is within one latency of the hog's
    assert sleeper.vruntime >= hog.vruntime - latency - 1e-6


def test_wakeup_preemption_when_credit_exceeds_granularity(quiet_kernel):
    k = quiet_kernel
    hog = k.spawn("hog", pure_compute_program(1.0), cpu=0, cpus_allowed=[0])

    def blinker():
        while True:
            yield Sleep(0.050)
            yield Compute(0.001)

    blink = k.spawn("blink", blinker(), cpu=0, cpus_allowed=[0], daemon=True)
    k.run()
    # the blinker woke several times and each time preempted the hog
    acc = k.latency_stats.for_task(blink.pid)
    assert acc.count >= 5
    assert acc.mean < 0.002


def test_tick_preemption_within_slice_bounds(quiet_kernel):
    """Two equal hogs must alternate with a period bounded by the CFS
    slice, not run to completion back-to-back."""
    k = quiet_kernel
    a = k.spawn("a", pure_compute_program(0.2), cpu=0, cpus_allowed=[0])
    b = k.spawn("b", pure_compute_program(0.2), cpu=0, cpus_allowed=[0])
    k.run(until=0.1)
    # both have progressed within the first 100ms
    assert a.sum_exec_runtime > 0.02
    assert b.sum_exec_runtime > 0.02


def test_min_vruntime_monotonic(quiet_kernel):
    k = quiet_kernel
    k.spawn("a", compute_sleep_program(5, 0.01, 0.01), cpu=0, cpus_allowed=[0])
    k.spawn("b", compute_sleep_program(5, 0.01, 0.01), cpu=0, cpus_allowed=[0])
    q = k.rqs[0].queue_for(k.fair)
    seen = []

    orig = k.fair.account

    def spy(rq, task, delta):
        orig(rq, task, delta)
        seen.append(q.min_vruntime)

    k.fair.account = spy
    k.run()
    assert seen == sorted(seen)


def test_double_enqueue_rejected(quiet_kernel):
    k = quiet_kernel
    t = k.create_task("t", pure_compute_program(1.0))
    k.start_task(t, cpu=0)
    rq = k.rqs[0]
    if t.state == TaskState.READY:
        with pytest.raises(ValueError):
            k.fair.enqueue_task(rq, t)
