"""Scheduling-domain hierarchy tests."""

import pytest

from repro.kernel.domains import LEVELS, Domain, DomainHierarchy
from repro.power5.machine import Machine, MachineTopology


@pytest.fixture
def hier():
    return DomainHierarchy(Machine())


def test_levels_order():
    assert LEVELS == ("context", "core", "chip")


def test_for_cpu_innermost_first(hier):
    doms = hier.for_cpu(0)
    assert [d.level for d in doms] == ["context", "core", "chip"]
    assert doms[0].cpus == (0, 1)
    assert doms[1].cpus == (0, 1, 2, 3)


def test_peers(hier):
    assert hier.peers(0, "context") == (0, 1)
    assert hier.peers(2, "context") == (2, 3)
    assert hier.peers(0, "core") == (0, 1, 2, 3)
    assert hier.peers(0, "bogus") == (0,)


def test_distance_metric(hier):
    assert hier.distance(0, 0) == -1
    assert hier.distance(0, 1) == 0  # same core (SMT siblings)
    assert hier.distance(0, 2) == 1  # same chip, different core
    assert hier.distance(1, 3) == 1


def test_distance_multi_chip():
    h = DomainHierarchy(Machine(MachineTopology(chips=2)))
    assert h.distance(0, 1) == 0
    assert h.distance(0, 2) == 1
    assert h.distance(0, 4) == 2  # different chip


def test_domain_contains():
    d = Domain("context", (0, 1))
    assert 0 in d and 1 in d and 2 not in d
