"""Real-time class tests: FIFO/RR semantics, priority ordering."""

import pytest

from repro.kernel import Compute, Kernel, SchedPolicy, Sleep
from repro.kernel.policies import TaskState
from repro.kernel.rt import RTQueue
from tests.conftest import pure_compute_program


def rt_task(kernel, name, prog, prio, cpu=0):
    return kernel.spawn(
        name, prog, cpu=cpu, cpus_allowed=[cpu],
        policy=SchedPolicy.FIFO, rt_priority=prio,
    )


def test_higher_rt_priority_runs_first(quiet_kernel):
    k = quiet_kernel
    order = []

    def prog(name):
        def p():
            order.append(name)
            yield Compute(0.01)

        return p()

    k.spawn("low", prog("low"), cpu=0, cpus_allowed=[0],
            policy=SchedPolicy.FIFO, rt_priority=10)
    k.spawn("high", prog("high"), cpu=0, cpus_allowed=[0],
            policy=SchedPolicy.FIFO, rt_priority=90)
    k.run()
    assert order == ["high", "low"]


def test_fifo_runs_to_completion(quiet_kernel):
    k = quiet_kernel
    a = rt_task(k, "a", pure_compute_program(0.05), prio=10)
    b = rt_task(k, "b", pure_compute_program(0.05), prio=10)
    k.run()
    # same priority FIFO: a finishes entirely before b starts
    # -> exactly 2 switches into real tasks plus idle transitions
    assert a.state == b.state == TaskState.EXITED


def test_rt_wakeup_preempts_lower_rt(quiet_kernel):
    k = quiet_kernel
    low = rt_task(k, "low", pure_compute_program(0.2), prio=10)

    def waker():
        yield Sleep(0.01)
        yield Compute(0.01)

    hi = rt_task(k, "hi", waker(), prio=50)
    k.run()
    acc = k.latency_stats.for_task(hi.pid)
    assert acc.count == 1
    assert acc.mean < 1e-4  # preempted immediately


def test_rt_never_preempted_by_cfs_wakeup(quiet_kernel):
    """A CFS task waking while an RT task computes waits it out."""
    k = quiet_kernel

    def normal():
        yield Compute(0.001)
        yield Sleep(0.02)  # wakes at ~0.02, mid-RT-burst
        yield Compute(0.001)

    n = k.spawn("n", normal(), cpu=0, cpus_allowed=[0])
    k.sim.after(
        0.01,
        lambda: k.start_task(
            k.create_task(
                "rt",
                pure_compute_program(0.2),
                policy=SchedPolicy.FIFO,
                rt_priority=10,
                cpus_allowed=[0],
            ),
            cpu=0,
        ),
    )
    k.run()
    acc = k.latency_stats.for_task(n.pid)
    # the second wakeup waited for the RT burst to finish
    assert acc.max > 0.05


def test_rr_timeslices_rotate(quiet_kernel):
    k = quiet_kernel
    k.tunables.set("kernel/sched_rr_timeslice", 0.01)
    a = k.spawn("a", pure_compute_program(0.05), cpu=0, cpus_allowed=[0],
                policy=SchedPolicy.RR, rt_priority=10)
    b = k.spawn("b", pure_compute_program(0.05), cpu=0, cpus_allowed=[0],
                policy=SchedPolicy.RR, rt_priority=10)
    k.run(until=0.06)
    # both made progress concurrently thanks to RR rotation
    assert a.sum_exec_runtime > 0.01
    assert b.sum_exec_runtime > 0.01


def test_rr_respects_priority_over_rotation(quiet_kernel):
    k = quiet_kernel
    k.tunables.set("kernel/sched_rr_timeslice", 0.01)
    hi = k.spawn("hi", pure_compute_program(0.05), cpu=0, cpus_allowed=[0],
                 policy=SchedPolicy.RR, rt_priority=50)
    lo = k.spawn("lo", pure_compute_program(0.05), cpu=0, cpus_allowed=[0],
                 policy=SchedPolicy.RR, rt_priority=10)
    k.run(until=0.04)
    assert lo.sum_exec_runtime == 0.0  # never ran while hi runnable


def test_rt_priority_out_of_range_rejected():
    from repro.kernel.syscalls import SetScheduler

    with pytest.raises(ValueError):
        SetScheduler(SchedPolicy.FIFO, rt_priority=0)
    with pytest.raises(ValueError):
        SetScheduler(SchedPolicy.RR, rt_priority=100)


# ----------------------------------------------------------------------
# RTQueue unit tests
# ----------------------------------------------------------------------
class _FakeTask:
    def __init__(self, prio):
        self.rt_priority = prio


def test_rtqueue_pop_best_order():
    q = RTQueue()
    t1, t2, t3 = _FakeTask(10), _FakeTask(50), _FakeTask(10)
    for t in (t1, t2, t3):
        q.push(t)
    assert q.pop_best() is t2
    assert q.pop_best() is t1  # FIFO within equal priority
    assert q.pop_best() is t3
    assert q.pop_best() is None


def test_rtqueue_push_front():
    q = RTQueue()
    t1, t2 = _FakeTask(10), _FakeTask(10)
    q.push(t1)
    q.push(t2, front=True)
    assert q.pop_best() is t2


def test_rtqueue_remove():
    q = RTQueue()
    t1, t2 = _FakeTask(10), _FakeTask(20)
    q.push(t1)
    q.push(t2)
    q.remove(t1)
    assert q.count == 1
    assert q.best_priority() == 20
    with pytest.raises(ValueError):
        q.remove(t1)
