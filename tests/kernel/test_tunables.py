"""Tunable registry tests."""

import pytest

from repro.kernel.tunables import Tunables, TunableError


@pytest.fixture
def tun():
    return Tunables()


def test_defaults_match_paper(tun):
    assert tun.get("hpcsched/high_util") == 85.0
    assert tun.get("hpcsched/low_util") == 65.0
    assert tun.get("hpcsched/min_prio") == 4
    assert tun.get("hpcsched/max_prio") == 6
    assert tun.get("hpcsched/adaptive_g") == pytest.approx(0.10)
    assert tun.get("hpcsched/adaptive_l") == pytest.approx(0.90)


def test_kernel_defaults_are_2624_era(tun):
    assert tun.get("kernel/sched_latency") == pytest.approx(0.020)
    assert tun.get("kernel/tick_period") == pytest.approx(0.001)


def test_set_and_get_roundtrip(tun):
    tun.set("hpcsched/high_util", 90.0)
    assert tun.get("hpcsched/high_util") == 90.0


def test_int_promoted_to_float(tun):
    tun.set("hpcsched/high_util", 80)
    assert tun.get("hpcsched/high_util") == 80.0


def test_unknown_path_rejected(tun):
    with pytest.raises(TunableError):
        tun.get("kernel/nope")
    with pytest.raises(TunableError):
        tun.set("kernel/nope", 1)


def test_type_mismatch_rejected(tun):
    with pytest.raises(TunableError):
        tun.set("hpcsched/min_prio", "six")


def test_range_validation(tun):
    with pytest.raises(TunableError):
        tun.set("hpcsched/min_prio", 9)
    with pytest.raises(TunableError):
        tun.set("hpcsched/high_util", 150.0)
    with pytest.raises(TunableError):
        tun.set("kernel/tick_period", -0.1)


def test_enum_like_validation(tun):
    tun.set("hpcsched/policy_mode", "fifo")
    with pytest.raises(TunableError):
        tun.set("hpcsched/policy_mode", "lifo")


def test_register_custom(tun):
    tun.register("custom/x", 3, doc="a custom knob")
    assert tun.get("custom/x") == 3
    assert tun.describe("custom/x") == "a custom knob"


def test_paths_sorted(tun):
    paths = tun.paths()
    assert paths == sorted(paths)
    assert "hpcsched/high_util" in paths
