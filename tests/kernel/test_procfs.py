"""Procfs-style introspection tests."""

import pytest

from repro.kernel.procfs import consistency_check, ps, sched_debug, schedstat, task_stat
from tests.conftest import compute_sleep_program, pure_compute_program


def test_sched_debug_lists_all_cpus(quiet_kernel):
    k = quiet_kernel
    k.spawn("w", pure_compute_program(0.5), cpu=0)
    k.sim.run(until=0.01)
    out = sched_debug(k)
    for cpu in range(4):
        assert f"cpu#{cpu}:" in out
    assert "w (pid" in out
    assert "nr_switches=" in out


def test_task_stat_fields(quiet_kernel):
    k = quiet_kernel
    t = k.spawn("w", pure_compute_program(0.1), cpu=2, cpus_allowed=[2])
    k.run()
    st = task_stat(k, t.pid)
    assert st["comm"] == "w"
    assert st["state"] == "exited"
    assert st["cpu"] == 2
    assert st["cpus_allowed"] == [2]
    assert st["utime"] > 0


def test_ps_table(quiet_kernel):
    k = quiet_kernel
    k.spawn("alpha", pure_compute_program(0.1), cpu=0)
    k.spawn("beta", pure_compute_program(0.1), cpu=1)
    k.run()
    out = ps(k)
    assert "alpha" in out and "beta" in out
    assert out.splitlines()[0].startswith("  PID")


def test_schedstat_aggregates(quiet_kernel):
    k = quiet_kernel
    k.spawn("w", compute_sleep_program(3, 0.01, 0.01), cpu=0)
    k.run()
    st = schedstat(k)
    assert st["nr_switches"] == k.context_switches
    assert st["nr_tasks"] == 1
    assert st["nr_runnable"] == 0
    assert st["wakeups"] >= 3
    assert st["events_processed"] > 0


def test_consistency_check_healthy_during_run(quiet_kernel):
    k = quiet_kernel
    for i in range(6):
        k.spawn(f"t{i}", compute_sleep_program(3, 0.02, 0.01))
    # probe at several points mid-run
    for horizon in (0.01, 0.05, 0.1):
        k.sim.run(until=horizon)
        assert consistency_check(k) == []
    k.run()
    assert consistency_check(k) == []


def test_consistency_check_detects_corruption(quiet_kernel):
    from repro.kernel.policies import TaskState

    k = quiet_kernel
    t = k.spawn("w", pure_compute_program(0.5), cpu=0)
    k.sim.run(until=0.01)
    t.state = TaskState.SLEEPING  # corrupt: current task marked sleeping
    problems = consistency_check(k)
    assert problems
    assert any("not RUNNING" in p for p in problems)
