"""Calibration round-trip tests: the executable provenance of the
workload constants."""

import pytest

from repro.analysis.calibration import (
    calibrate_btmz_zones,
    calibrate_metbench,
    required_priority_window,
)
from repro.power5.perfmodel import CPU_BOUND, MEM_BOUND, MIXED
from repro.workloads.btmz import DEFAULT_ZONE_WORKS
from repro.workloads.metbench import DEFAULT_BIG_LOAD, DEFAULT_SMALL_LOAD


def test_metbench_defaults_come_from_table3():
    cal = calibrate_metbench()
    assert cal.small_load == pytest.approx(DEFAULT_SMALL_LOAD, rel=0.005)
    assert cal.big_load == pytest.approx(DEFAULT_BIG_LOAD, rel=0.005)
    assert cal.iteration_time == pytest.approx(81.78 / 45)


def test_metbench_is_balanceable_within_pm2():
    cal = calibrate_metbench()
    assert cal.balanceable
    assert cal.required_balance_ratio == pytest.approx(
        DEFAULT_BIG_LOAD / DEFAULT_SMALL_LOAD, rel=0.01
    )


def test_metbench_mem_bound_would_not_balance():
    cal = calibrate_metbench(profile=MEM_BOUND)
    assert not cal.balanceable  # priorities barely shift mem-bound speed


def test_btmz_zone_calibration_close_to_defaults():
    """The heavy (pace-setting) zones calibrate tightly; the light
    zones carry the documented sub-iteration alignment error."""
    works = calibrate_btmz_zones()
    for calibrated, shipped in zip(works[2:], DEFAULT_ZONE_WORKS[2:]):
        assert calibrated == pytest.approx(shipped, rel=0.05)
    for calibrated, shipped in zip(works[:2], DEFAULT_ZONE_WORKS[:2]):
        assert calibrated == pytest.approx(shipped, rel=0.35)


def test_btmz_heaviest_zone_tight():
    works = calibrate_btmz_zones()
    assert works[3] == pytest.approx(DEFAULT_ZONE_WORKS[3], rel=0.02)


def test_required_priority_window():
    d, ok = required_priority_window(1.0, CPU_BOUND)
    assert (d, ok) == (0, True)
    d, ok = required_priority_window(7.0, CPU_BOUND)
    assert ok and d == 2  # MetBench's ~7x needs exactly the paper's ±2
    d, ok = required_priority_window(0.145, CPU_BOUND)  # inverse ratio
    assert ok and d == 2
    d, ok = required_priority_window(100.0, CPU_BOUND)
    assert not ok  # beyond any window: the oscillation regime


def test_required_priority_window_validation():
    with pytest.raises(ValueError):
        required_priority_window(0.0, CPU_BOUND)
