"""Paper-style table formatting tests."""

import pytest

from repro.analysis.tables import format_characterization_table, format_comparison
from repro.experiments.common import ExperimentResult, TaskResult


def make_result(sched, exec_time, comps):
    res = ExperimentResult(workload="wl", scheduler=sched, exec_time=exec_time)
    for name, comp in comps.items():
        res.tasks[name] = TaskResult(
            name=name, pct_comp=comp, pct_running=comp,
            priority=4 if sched in ("cfs", "static") else None,
            running=1.0, waiting=1.0, ready=0.0,
        )
    return res


def test_characterization_table_layout():
    res = make_result("cfs", 81.78, {"P1": 25.3, "P2": 100.0})
    out = format_characterization_table([res], title="Table III")
    lines = out.splitlines()
    assert lines[0] == "Table III"
    assert "Baseline 2.6.24" in out
    assert "81.78s" in out
    assert "P1" in out and "P2" in out


def test_dynamic_priority_renders_dash():
    res = make_result("uniform", 71.74, {"P1": 96.2})
    out = format_characterization_table([res])
    assert "-" in out.splitlines()[-1]


def test_comparison_includes_deltas_and_improvements():
    results = {
        "cfs": make_result("cfs", 80.0, {"P1": 25.0}),
        "uniform": make_result("uniform", 72.0, {"P1": 96.0}),
    }
    out = format_comparison(
        results,
        paper_exec={"cfs": 81.78, "uniform": 71.74},
        paper_comp={"uniform": {"P1": 96.17}},
    )
    assert "-2.2%" in out  # 80.0 vs 81.78
    assert "improvement uniform over cfs: 10.0%" in out
    assert "P1=96.0/96.2" in out


def test_comparison_handles_missing_paper_values():
    results = {"cfs": make_result("cfs", 80.0, {"P1": 25.0})}
    out = format_comparison(results, paper_exec={})
    assert "n/a" in out
