"""Convergence-time metrics over fabricated and real traces."""

from dataclasses import dataclass

import pytest

from repro.analysis.convergence import (
    DEFAULT_EPS,
    EpochSample,
    auto_eps,
    convergence_from_result,
    convergence_metrics,
    epoch_samples,
    spread_floor,
)
from repro.trace.collector import TraceCollector


@dataclass
class _Task:
    pid: int
    name: str
    is_idle_task: bool = False


def make_trace(rounds, names=("A", "B")):
    """A trace with one ``iteration`` event per task per round.

    ``rounds`` is a list of per-round utilization tuples (one value per
    task); round ``r`` closes at time ``r + 1``.  The traced ``index``
    deliberately mimics the detector's reset-on-behaviour-change: it is
    pinned to 2 everywhere, so any fold relying on it would collapse.
    """
    trace = TraceCollector()
    tasks = [_Task(pid=i + 1, name=n) for i, n in enumerate(names)]
    for r, utils in enumerate(rounds):
        for task, util in zip(tasks, utils):
            trace.record(float(r + 1), task, "iteration", index=2, util=util)
    return trace


def spreads(samples):
    return [s.spread for s in samples]


# ----------------------------------------------------------------------
# Epoch folding.
# ----------------------------------------------------------------------


def test_epochs_fold_by_per_task_ordinal_not_traced_index():
    trace = make_trace([(0.5, 0.9), (0.6, 0.8), (0.7, 0.7)])
    samples = epoch_samples(trace)
    assert [s.index for s in samples] == [1, 2, 3]
    assert [s.time for s in samples] == [1.0, 2.0, 3.0]
    assert samples[0].utils == {"A": 0.5, "B": 0.9}
    assert spreads(samples) == pytest.approx([40.0, 20.0, 0.0])


def test_incomplete_epochs_are_dropped():
    trace = make_trace([(0.5, 0.9), (0.6, 0.8)])
    # A third event for A only: epoch 3 is incomplete (B never closed it).
    trace.record(3.0, _Task(pid=1, name="A"), "iteration", index=2, util=0.7)
    samples = epoch_samples(trace)
    assert [s.index for s in samples] == [1, 2]


def test_names_filter_restricts_the_fold():
    trace = make_trace([(0.5, 0.9), (0.6, 0.8)])
    # Noise from an untracked task must not truncate the series.
    trace.record(1.5, _Task(pid=9, name="noise"), "iteration", index=2, util=0.1)
    samples = epoch_samples(trace, names=["A", "B"])
    assert len(samples) == 2
    assert all(set(s.utils) == {"A", "B"} for s in samples)


def test_epoch_time_is_the_slowest_member():
    trace = TraceCollector()
    trace.record(1.0, _Task(pid=1, name="A"), "iteration", index=1, util=0.5)
    trace.record(1.7, _Task(pid=2, name="B"), "iteration", index=1, util=0.6)
    (sample,) = epoch_samples(trace)
    assert sample.time == 1.7


def test_empty_trace_yields_no_epochs():
    assert epoch_samples(TraceCollector()) == []


def test_epoch_sample_degenerate_properties():
    empty = EpochSample(index=1, time=0.0, utils={})
    assert empty.spread == 0.0
    assert empty.factor == 1.0
    zero = EpochSample(index=1, time=0.0, utils={"A": 0.0, "B": 0.0})
    assert zero.factor == 1.0


# ----------------------------------------------------------------------
# Convergence metrics.
# ----------------------------------------------------------------------


def sample(index, spread_points, time=None):
    """An epoch with the requested spread (two tasks around 0.5)."""
    half = spread_points / 200.0
    return EpochSample(
        index=index,
        time=float(index) if time is None else time,
        utils={"A": 0.5 - half, "B": 0.5 + half},
    )


def test_converges_at_the_first_epoch_that_stays_below_eps():
    samples = [sample(1, 40), sample(2, 30), sample(3, 5), sample(4, 6)]
    m = convergence_metrics(samples, eps=DEFAULT_EPS)
    assert m.converged
    assert m.epochs == 3
    assert m.sim_time == pytest.approx(3.0)  # from t=0 (application start)
    assert m.residual_spread == pytest.approx(5.5)
    assert m.epochs_observed == 4
    payload = m.to_payload()
    assert payload["converged"] is True and payload["epochs"] == 3


def test_a_single_lucky_epoch_does_not_count():
    """Fall *and stay* below: a dip followed by re-divergence converges
    only at the final settle point."""
    samples = [sample(1, 40), sample(2, 5), sample(3, 30), sample(4, 4)]
    m = convergence_metrics(samples, eps=DEFAULT_EPS)
    assert m.converged
    assert m.epochs == 4


def test_never_converging_reports_residuals_over_the_whole_tail():
    samples = [sample(1, 40), sample(2, 30)]
    m = convergence_metrics(samples, eps=DEFAULT_EPS)
    assert not m.converged
    assert m.epochs is None and m.sim_time is None
    assert m.residual_spread == pytest.approx(35.0)
    assert m.epochs_observed == 2


def test_after_index_anchors_the_disturbance():
    samples = [sample(1, 5), sample(2, 5), sample(3, 40), sample(4, 5)]
    m = convergence_metrics(samples, eps=DEFAULT_EPS, after_index=2)
    assert m.converged
    assert m.epochs == 2  # epochs 3 (spike) and 4 (settled)
    # sim_time is measured from the disturbance epoch's close (t=2).
    assert m.sim_time == pytest.approx(2.0)
    assert m.epochs_observed == 2


def test_until_index_excludes_a_later_disturbance():
    """A reversal spike outside the window must not mark the step
    window as unconverged."""
    samples = [sample(1, 40), sample(2, 5), sample(3, 5), sample(4, 40)]
    unbounded = convergence_metrics(samples, eps=DEFAULT_EPS)
    assert not unbounded.converged  # the spike at 4 breaks "stays below"
    windowed = convergence_metrics(samples, eps=DEFAULT_EPS, until_index=3)
    assert windowed.converged
    assert windowed.epochs == 2
    assert windowed.epochs_observed == 3


def test_empty_window_is_not_converged():
    m = convergence_metrics([sample(1, 5)], after_index=5)
    assert not m.converged
    assert m.epochs_observed == 0
    assert m.residual_spread == 0.0


def test_negative_eps_is_rejected():
    with pytest.raises(ValueError, match="eps"):
        convergence_metrics([sample(1, 5)], eps=-1.0)


# ----------------------------------------------------------------------
# Thresholds: the discrete-priority floor and the auto band.
# ----------------------------------------------------------------------


def test_spread_floor_is_the_windows_minimum():
    samples = [sample(1, 40), sample(2, 16), sample(3, 18), sample(4, 2)]
    assert spread_floor(samples) == pytest.approx(2.0)
    assert spread_floor(samples, after_index=1, until_index=3) == pytest.approx(16.0)
    assert spread_floor(samples, after_index=4) is None


def test_auto_eps_never_drops_below_the_detector_band():
    tight = [sample(1, 2), sample(2, 3)]
    assert auto_eps(tight) == DEFAULT_EPS
    loose = [sample(1, 16), sample(2, 18)]
    assert auto_eps(loose) == pytest.approx(16.5)  # floor + 0.5 slack
    assert auto_eps([]) == DEFAULT_EPS


# ----------------------------------------------------------------------
# The ExperimentResult entry point.
# ----------------------------------------------------------------------


def test_convergence_from_result_requires_a_trace():
    class NoTrace:
        trace = None

    with pytest.raises(ValueError, match="keep_trace"):
        convergence_from_result(NoTrace())


def test_convergence_from_result_reads_a_real_run():
    from repro.experiments.common import run_experiment
    from repro.workloads.synth import SyntheticConvergence

    workload = SyntheticConvergence(ranks=4, iterations=6, step_at=3)
    result = run_experiment(
        workload, "adaptive", topology=workload.topology(), keep_trace=True
    )
    samples = epoch_samples(result.trace, names=list(result.tasks))
    # One complete epoch per workload iteration.
    assert len(samples) == 6
    m = convergence_from_result(
        result, eps=auto_eps(samples, after_index=1, until_index=3), after_index=3
    )
    assert m.converged
    assert m.epochs_observed == 3
