"""Metric helper tests."""

import pytest

from repro.analysis.metrics import (
    critical_path_bound,
    imbalance_percent,
    percent_improvement,
    speedup,
)


def test_speedup():
    assert speedup(10.0, 5.0) == 2.0
    with pytest.raises(ValueError):
        speedup(10.0, 0.0)


def test_percent_improvement():
    assert percent_improvement(100.0, 87.0) == pytest.approx(13.0)
    assert percent_improvement(100.0, 100.0) == 0.0
    assert percent_improvement(100.0, 110.0) == pytest.approx(-10.0)
    with pytest.raises(ValueError):
        percent_improvement(0.0, 1.0)


def test_imbalance_percent_fractions_and_percent():
    assert imbalance_percent([0.25, 1.0]) == pytest.approx(75.0)
    assert imbalance_percent([25.0, 100.0]) == pytest.approx(75.0)
    assert imbalance_percent([]) == 0.0
    assert imbalance_percent([0.5]) == 0.0


def test_critical_path_bound():
    assert critical_path_bound([1.0, 3.0, 2.0]) == 3.0
    assert critical_path_bound([1.0, 3.0], speed=2.0) == 1.5
    assert critical_path_bound([]) == 0.0
    with pytest.raises(ValueError):
        critical_path_bound([1.0], speed=0.0)
