"""Iteration-analytics tests: the paper's convergence claims, measured."""

import pytest

from repro.analysis.iterations import (
    balance_series,
    iteration_series,
    iterations_to_balance,
    rebalance_latencies,
)
from repro.experiments import metbench, metbenchvar


@pytest.fixture(scope="module")
def metbench_run():
    return metbench.run_one("uniform", iterations=8, keep_trace=True)


@pytest.fixture(scope="module")
def metbenchvar_run():
    return metbenchvar.run_one("uniform", iterations=12, k=4, keep_trace=True)


WORKERS = ["P1", "P2", "P3", "P4"]


def test_iteration_series_structure(metbench_run):
    series = iteration_series(metbench_run.trace, WORKERS)
    assert set(series) == set(WORKERS)
    for samples in series.values():
        assert len(samples) == 8
        assert [s.index for s in samples] == list(range(1, 9))
        times = [s.time for s in samples]
        assert times == sorted(times)
        assert all(0.0 <= s.util <= 1.0 for s in samples)


def test_balance_series_shrinks(metbench_run):
    spreads = balance_series(metbench_run.trace, WORKERS)
    assert spreads[0] > 60.0  # iteration 1: the raw imbalance
    assert spreads[-1] < 10.0  # balanced thereafter


def test_paper_claim_balanced_in_one_or_two_iterations(metbench_run):
    """§I: 'the scheduler is able to detect the correct hardware
    priority quickly (in one or two iterations)' — measured."""
    n = iterations_to_balance(metbench_run.trace, WORKERS)
    assert n is not None and n <= 2


def test_paper_claim_rebalance_within_a_few_iterations(metbenchvar_run):
    """§V-B: after each reversal the scheduler needs ~2 iterations to
    detect and correct the new imbalance — measured."""
    lats = rebalance_latencies(metbenchvar_run.trace, WORKERS)
    assert lats, "no excursions detected (k too large?)"
    assert all(lat <= 4 for lat in lats)
    assert min(lats) <= 3


def test_baseline_never_balances():
    base = metbench.run_one("cfs", iterations=5, keep_trace=True)
    assert iterations_to_balance(base.trace, WORKERS) is None


def test_empty_trace():
    from repro.trace.collector import TraceCollector

    trace = TraceCollector()
    assert balance_series(trace) == []
    assert iterations_to_balance(trace) is None
    assert rebalance_latencies(trace) == []
