"""Stub runners for the serve tests (dotted-path referenced).

``gate_run`` blocks until a release file appears, with a hard cap so a
forgotten release can never wedge the interpreter at exit (worker
threads are non-daemon).  Tests park it on a worker slot to hold jobs
in RUNNING/QUEUED deterministically, then release it.
"""

from __future__ import annotations

import os
import time


def gate_run(gate_dir: str, token: str = "release", seed: int = 0,
             limit: float = 20.0) -> dict:
    """Block until ``<gate_dir>/<token>`` exists (bounded), then return."""
    path = os.path.join(gate_dir, token)
    deadline = time.monotonic() + limit
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise RuntimeError(f"gate {path} never released")
        time.sleep(0.01)
    return {"seed": seed, "token": token}


def counted_run(count_dir: str, seed: int = 0, value: float = 1.0) -> dict:
    """Success that leaves one marker file per *execution*.

    The marker count is the ground truth for the zero-duplicate-
    execution assertions: journal ``executions`` says what the service
    believes, the markers say what actually ran.
    """
    os.makedirs(count_dir, exist_ok=True)
    marker = os.path.join(
        count_dir, f"exec-{os.getpid()}-{time.monotonic_ns()}"
    )
    open(marker, "w").close()
    return {"seed": seed, "value": value * 2 + seed}
