"""End-to-end service behaviour (in-process, virtual clock, no HTTP).

Everything here runs on one event loop and one thread: the tests call
the service object directly and poll the journal, which keeps the
scheduling-relevant assertions deterministic.  The HTTP surface is
exercised separately in test_http.py.
"""

import asyncio
import os

import pytest

from repro.campaign.spec import RunSpec
from repro.serve import CampaignService, JOB_CANCELLED, JOB_FAILED, JOB_OK

from tests.serve.conftest import serve_config, wait_until

STUBS = "tests.serve.stubs"
CAMPAIGN_STUBS = "tests.campaign.stubs"


def ok_spec(seed=0, value=1.0) -> RunSpec:
    return RunSpec(
        experiment="stub",
        runner=f"{CAMPAIGN_STUBS}:ok_run",
        params={"value": value},
        seed=seed,
    )


def crash_spec(seed=0) -> RunSpec:
    return RunSpec(
        experiment="stub", runner=f"{CAMPAIGN_STUBS}:crash_run", seed=seed
    )


def gate_spec(gate_dir, token, seed=0) -> RunSpec:
    return RunSpec(
        experiment="stub",
        runner=f"{STUBS}:gate_run",
        params={"gate_dir": str(gate_dir), "token": token},
        seed=seed,
    )


def counted_spec(count_dir, seed=0) -> RunSpec:
    return RunSpec(
        experiment="stub",
        runner=f"{STUBS}:counted_run",
        params={"count_dir": str(count_dir)},
        seed=seed,
    )


def submit_one(svc: CampaignService, tenant: str, spec: RunSpec) -> str:
    accepted, rejection = svc.submit(tenant, [(spec, "")])
    assert rejection is None, rejection
    return accepted[0].job_id


async def wait_terminal(svc: CampaignService, job_id: str, timeout=15.0):
    await wait_until(lambda: svc.queue.get(job_id).terminal, timeout=timeout)
    return svc.queue.get(job_id)


def test_fair_share_dispatch_order_follows_priorities(tmp_path):
    """With priorities 6 vs 4 and one worker slot, the dispatcher hands
    out slots 6:4 — the balancer's priorities measurably shift worker
    slots toward the favored tenant."""

    async def scenario():
        svc = CampaignService(serve_config(tmp_path, workers=1))
        order = []
        orig_charge = svc.scheduler.charge
        svc.scheduler.charge = lambda tenant: (
            order.append(tenant),
            orig_charge(tenant),
        )[1]
        await svc.start()
        try:
            svc.registry.get("fast").priority = 6
            svc.registry.get("slow").priority = 4
            for seed in range(12):
                submit_one(svc, "fast", ok_spec(seed=seed, value=2.0))
                submit_one(svc, "slow", ok_spec(seed=seed, value=3.0))
            await wait_until(lambda: svc.queue.pending() == 0)
            assert order[:10].count("fast") == 6
            assert order[:10].count("slow") == 4
        finally:
            await svc.stop()

    asyncio.run(scenario())


def test_cancel_mid_run_discards_late_result(tmp_path):
    async def scenario():
        gate_dir = tmp_path / "gates"
        gate_dir.mkdir()
        svc = CampaignService(serve_config(tmp_path / "svc", workers=1))
        await svc.start()
        try:
            jid = submit_one(svc, "t", gate_spec(gate_dir, "g1"))
            await wait_until(
                lambda: svc.queue.get(jid).state == "RUNNING"
            )
            cancelled = svc.cancel(jid)
            assert cancelled.state == JOB_CANCELLED
            # Release the worker; its late result must be discarded.
            (gate_dir / "g1").touch()
            follow_up = submit_one(svc, "t", ok_spec(seed=99))
            done = await wait_terminal(svc, follow_up)
            assert done.state == JOB_OK  # the slot came back
            final = svc.queue.get(jid)
            assert final.state == JOB_CANCELLED
            assert final.result is None
            assert svc.registry.get("t").cancelled == 1
        finally:
            await svc.stop()

    asyncio.run(scenario())


def test_cross_tenant_cache_sharing(tmp_path):
    """Identical specs from different tenants share one execution: the
    cache key has no tenant component, so tenant b's jobs complete from
    tenant a's results without touching a worker."""

    async def scenario():
        count_dir = tmp_path / "counts"
        svc = CampaignService(serve_config(tmp_path / "svc", workers=1))
        await svc.start()
        try:
            a_ids = [
                submit_one(svc, "a", counted_spec(count_dir, seed=s))
                for s in (1, 2)
            ]
            for jid in a_ids:
                assert (await wait_terminal(svc, jid)).state == JOB_OK
            executed = len(os.listdir(count_dir))
            assert executed == 2

            b_ids = [
                submit_one(svc, "b", counted_spec(count_dir, seed=s))
                for s in (1, 2)
            ]
            b_jobs = [await wait_terminal(svc, jid) for jid in b_ids]
            assert all(j.state == JOB_OK for j in b_jobs)
            assert all(j.cache_hit for j in b_jobs)
            assert all(j.executions == 0 for j in b_jobs)
            # Byte-identical results, zero additional executions.
            for a_jid, b_job in zip(a_ids, b_jobs):
                assert b_job.result == svc.queue.get(a_jid).result
            assert len(os.listdir(count_dir)) == executed
            assert svc.registry.get("b").cache_hits == 2
        finally:
            await svc.stop()

    asyncio.run(scenario())


def test_crash_restart_recovers_journal_without_duplicate_executions(tmp_path):
    """Kill-9 semantics: a new service on the same root re-queues the
    RUNNING row, serves completed rows from the journal, answers queued
    duplicates from the cache — and the execution-marker count proves
    no cached work ran twice."""
    root = tmp_path / "svc"
    gate_dir = tmp_path / "gates"
    gate_dir.mkdir()
    count_dir = tmp_path / "counts"
    ids = {}

    async def phase1():
        svc = CampaignService(serve_config(root, workers=1))
        await svc.start()
        ids["a1"] = submit_one(svc, "a", counted_spec(count_dir, seed=1))
        ids["a2"] = submit_one(svc, "a", counted_spec(count_dir, seed=2))
        await wait_terminal(svc, ids["a1"])
        await wait_terminal(svc, ids["a2"])
        ids["gate"] = submit_one(svc, "c", gate_spec(gate_dir, "g1"))
        await wait_until(
            lambda: svc.queue.get(ids["gate"]).state == "RUNNING"
        )
        # Same spec as a1, different tenant: queued behind the gate.
        ids["b1"] = submit_one(svc, "b", counted_spec(count_dir, seed=1))
        assert svc.queue.get(ids["b1"]).state == "QUEUED"
        svc.abandon()  # kill -9: no drain, no journal cleanup

    asyncio.run(phase1())
    (gate_dir / "g1").touch()  # let the orphaned worker thread exit
    markers_before_restart = len(os.listdir(count_dir))
    assert markers_before_restart == 2

    async def phase2():
        svc = CampaignService(serve_config(root, workers=1))
        await svc.start()
        try:
            # Recovery re-queued exactly the mid-flight job.
            assert [j.job_id for j in svc.recovered_jobs] == [ids["gate"]]
            for key in ("gate", "b1"):
                job = await wait_terminal(svc, ids[key])
                assert job.state == JOB_OK, job.error

            gate = svc.queue.get(ids["gate"])
            assert gate.recovered
            assert gate.executions == 2  # pre-crash try + post-restart run

            b1 = svc.queue.get(ids["b1"])
            assert b1.executions == 0  # answered from a1's cached bytes
            assert b1.cache_hit
            assert b1.result == svc.queue.get(ids["a1"]).result

            # Pre-crash terminal rows are served as-is, not re-run.
            a1 = svc.queue.get(ids["a1"])
            assert a1.executions == 1 and not a1.recovered
            assert len(os.listdir(count_dir)) == markers_before_restart
            assert svc.metrics()["recovered_jobs"] == 1
        finally:
            await svc.stop()

    asyncio.run(phase2())


def test_backpressure_bounds_per_tenant_and_total(tmp_path):
    async def scenario():
        gate_dir = tmp_path / "gates"
        gate_dir.mkdir()
        svc = CampaignService(
            serve_config(
                tmp_path / "svc",
                workers=1,
                max_tenant_depth=2,
                max_total_depth=3,
            )
        )
        await svc.start()
        try:
            gate_id = submit_one(svc, "g", gate_spec(gate_dir, "g1"))
            await wait_until(
                lambda: svc.queue.get(gate_id).state == "RUNNING"
            )
            # Tenant bound: the third queued job is rejected.
            specs = [(ok_spec(seed=s), "") for s in range(3)]
            accepted, rejection = svc.submit("x", specs)
            assert len(accepted) == 2
            assert rejection is not None and rejection.status == 429
            assert "tenant queue full" in rejection.reason
            # Total bound: another tenant hits the service-wide cap.
            accepted, rejection = svc.submit(
                "y", [(ok_spec(seed=s, value=7.0), "") for s in range(2)]
            )
            assert len(accepted) == 1
            assert rejection is not None and rejection.status == 429
            assert "service-wide" in rejection.reason
            assert svc.admission.rejections == 2
            # Backpressure clears once the queue drains.
            (gate_dir / "g1").touch()
            await wait_until(lambda: svc.queue.pending() == 0)
            accepted, rejection = svc.submit(
                "x", [(ok_spec(seed=50), "")]
            )
            assert rejection is None and len(accepted) == 1
            await wait_terminal(svc, accepted[0].job_id)
        finally:
            await svc.stop()

    asyncio.run(scenario())


def test_failed_job_retries_then_fails_terminally(tmp_path):
    async def scenario():
        svc = CampaignService(
            serve_config(tmp_path, workers=1, retries=1)
        )
        await svc.start()
        try:
            jid = submit_one(svc, "t", crash_spec(seed=5))
            job = await wait_terminal(svc, jid)
            assert job.state == JOB_FAILED
            assert job.executions == 2  # first try + one retry
            assert "injected crash" in job.error
            assert svc.registry.get("t").failed == 1
        finally:
            await svc.stop()

    asyncio.run(scenario())


def test_drain_finishes_accepted_work_then_rejects(tmp_path):
    async def scenario():
        svc = CampaignService(serve_config(tmp_path, workers=1))
        await svc.start()
        try:
            jids = [
                submit_one(svc, "t", ok_spec(seed=s)) for s in range(4)
            ]
            assert await svc.drain(timeout=15.0)
            assert all(svc.queue.get(j).state == JOB_OK for j in jids)
            accepted, rejection = svc.submit("t", [(ok_spec(seed=9), "")])
            assert accepted == []
            assert rejection is not None and rejection.status == 503
        finally:
            await svc.stop()

    asyncio.run(scenario())


def test_epoch_close_feeds_tenant_demand_to_balancer(tmp_path):
    """One tick = one detector iteration: a tenant busy since the last
    tick closes a util-1.0 epoch, an idle one closes util-0.0."""

    async def scenario():
        svc = CampaignService(serve_config(tmp_path, workers=1))
        await svc.start()
        try:
            jid = submit_one(svc, "busy", ok_spec(seed=1))
            svc.registry.get("idle")  # known but never submits
            await wait_terminal(svc, jid)
            svc.clock.advance()
            assert svc.registry.get("busy").stats.last_util == 1.0
            assert svc.registry.get("idle").stats.last_util == 0.0
            assert svc.registry.get("busy").priority == 6
            assert svc.registry.get("idle").priority == 4
            assert svc.balancer.epoch == 1
        finally:
            await svc.stop()

    asyncio.run(scenario())
