"""Fair-share balancer and stride scheduler (pure epoch arithmetic)."""

import pytest

from repro.hpcsched.bands import BandConfig
from repro.serve.scheduler import (
    ADJUSTING,
    FROZEN,
    OBSERVING,
    BalancerConfig,
    FairShareBalancer,
    FairShareScheduler,
)
from repro.serve.tenants import TenantRegistry


def make_balancer(heuristic="adaptive", **kw):
    registry = TenantRegistry(base_priority=4)
    cfg = BalancerConfig(
        heuristic=heuristic,
        band=BandConfig(low_util=65.0, high_util=85.0, min_prio=4, max_prio=6),
        **kw,
    )
    return registry, FairShareBalancer(registry, cfg)


class TestBalancerConvergence:
    def test_backlogged_tenant_promoted_in_one_epoch(self):
        registry, bal = make_balancer()
        registry.get("heavy")
        registry.get("light")
        changes = bal.close_epoch({"heavy": 1.0, "light": 0.0})
        assert changes == {"heavy": 6}
        assert registry.get("heavy").priority == 6
        assert registry.get("light").priority == 4  # already at min

    def test_stable_demand_freezes_after_observation(self):
        registry, bal = make_balancer()
        registry.get("heavy"), registry.get("light")
        bal.close_epoch({"heavy": 1.0, "light": 0.0})
        assert bal.state == OBSERVING
        assert bal.close_epoch({"heavy": 1.0, "light": 0.0}) == {}
        assert bal.state == FROZEN
        # Frozen epochs change nothing, however long demand persists.
        for _ in range(5):
            assert bal.close_epoch({"heavy": 1.0, "light": 0.0}) == {}
        assert registry.get("heavy").priority == 6
        assert bal.frozen

    def test_demand_reversal_thaws_and_reconverges(self):
        """The MetBenchVar scenario at the service layer: tenants swap
        demand after the balancer froze; Adaptive re-converges with
        swapped priorities within two epochs of the reversal."""
        registry, bal = make_balancer()
        registry.get("a"), registry.get("b")
        for _ in range(3):
            bal.close_epoch({"a": 1.0, "b": 0.0})
        assert bal.frozen
        assert (registry.get("a").priority, registry.get("b").priority) == (6, 4)

        changes = bal.close_epoch({"a": 0.0, "b": 1.0})  # the reversal
        assert bal.behaviour_changes == 1
        assert changes == {"a": 4, "b": 6}
        assert (registry.get("a").priority, registry.get("b").priority) == (4, 6)
        # And the new regime freezes again.
        bal.close_epoch({"a": 0.0, "b": 1.0})
        assert bal.frozen

    def test_small_fluctuation_does_not_thaw(self):
        registry, bal = make_balancer(rebalance_delta=10.0)
        registry.get("a"), registry.get("b")
        for _ in range(3):
            bal.close_epoch({"a": 1.0, "b": 0.0})
        assert bal.frozen
        # 5 utilization points of wiggle stays inside rebalance_delta.
        assert bal.close_epoch({"a": 0.95, "b": 0.05}) == {}
        assert bal.frozen
        assert bal.behaviour_changes == 0

    def test_new_tenant_thaws_frozen_state(self):
        registry, bal = make_balancer()
        registry.get("a")
        for _ in range(3):
            bal.close_epoch({"a": 1.0})
        assert bal.frozen
        registry.get("newcomer")  # membership change
        bal.close_epoch({"a": 1.0, "newcomer": 1.0})
        assert bal.behaviour_changes == 1
        assert registry.get("newcomer").priority == 6

    def test_observing_allows_downward_corrections(self):
        registry, bal = make_balancer()
        registry.get("a"), registry.get("b")
        bal.close_epoch({"a": 1.0, "b": 0.9})  # both promoted
        assert bal.state == OBSERVING
        # b collapses: de-prioritizing is always safe while observing.
        assert bal.close_epoch({"a": 1.0, "b": 0.0}) == {"b": 4}
        assert registry.get("b").priority == 4

    def test_observing_blocks_promotions(self):
        registry, bal = make_balancer()
        registry.get("a"), registry.get("b")
        bal.close_epoch({"a": 1.0, "b": 0.0})  # a promoted -> observing
        assert bal.state == OBSERVING
        # b springs to life during the observation epoch: the promotion
        # waits — acting on utilizations measured under the old
        # priorities is what causes oscillation (the detector's rule).
        assert bal.close_epoch({"a": 1.0, "b": 1.0}) == {}
        assert registry.get("b").priority == 4

    def test_uniform_vs_adaptive_reaction_speed(self):
        """After a long busy spell and one idle epoch, Uniform's global
        average still sits in the hysteresis band while Adaptive's
        recency weighting already demands a demotion — the paper's
        constant-vs-dynamic trade-off, reproduced at the tenant level."""
        utils = [1.0, 1.0, 1.0, 0.0]

        def account_with_history(heuristic):
            registry, bal = make_balancer(heuristic=heuristic)
            acct = registry.get("a")
            acct.priority = 6
            for epoch, frac in enumerate(utils, start=1):
                acct.demand_time += frac
                acct.stats.close_iteration(
                    now=float(epoch), run_now=acct.demand_time
                )
            return bal, acct

        bal_u, acct_u = account_with_history("uniform")
        assert acct_u.stats.global_util == pytest.approx(0.75)
        assert bal_u._decide(acct_u) is None  # 75% is inside the band

        bal_a, acct_a = account_with_history("adaptive")
        # U = 0.1 * Ug(i-1) + 0.9 * Ul(i) = 0.1*1.0 + 0.9*0.0 = 10%
        assert bal_a._decide(acct_a) == 4

    def test_unknown_heuristic_rejected(self):
        registry = TenantRegistry()
        with pytest.raises(ValueError):
            FairShareBalancer(registry, BalancerConfig(heuristic="bogus"))

    def test_snapshot_shape(self):
        registry, bal = make_balancer()
        registry.get("a")
        bal.close_epoch({"a": 1.0})
        snap = bal.snapshot()
        assert snap["heuristic"] == "adaptive"
        assert snap["epoch"] == 1
        assert snap["priorities"] == {"a": 6}
        assert snap["state"] in (ADJUSTING, OBSERVING, FROZEN)


class TestStrideScheduler:
    def test_dispatch_proportional_to_priority(self):
        registry = TenantRegistry()
        registry.get("fast").priority = 6
        registry.get("slow").priority = 4
        sched = FairShareScheduler(registry)
        counts = {"fast": 0, "slow": 0}
        for _ in range(100):
            pick = sched.pick(["fast", "slow"])
            counts[pick] += 1
            sched.charge(pick)
        # Stride scheduling: shares proportional to priorities, 6:4.
        assert counts["fast"] == 60
        assert counts["slow"] == 40

    def test_equal_priorities_alternate(self):
        registry = TenantRegistry()
        registry.get("a"), registry.get("b")
        sched = FairShareScheduler(registry)
        order = []
        for _ in range(6):
            pick = sched.pick(["a", "b"])
            order.append(pick)
            sched.charge(pick)
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_rejoin_catches_up_to_global_pass(self):
        """An idle spell is not hoarded as dispatch credit: a tenant
        rejoining after others advanced does not monopolize slots."""
        registry = TenantRegistry()
        registry.get("busy"), registry.get("idle")
        sched = FairShareScheduler(registry)
        for _ in range(40):
            sched.charge("busy")
        sched.rejoin("idle")
        picks = []
        for _ in range(4):
            pick = sched.pick(["busy", "idle"])
            picks.append(pick)
            sched.charge(pick)
        # Fair alternation, not 40 consecutive "idle" dispatches.
        assert picks.count("idle") <= 2

    def test_pick_empty(self):
        sched = FairShareScheduler(TenantRegistry())
        assert sched.pick([]) is None
