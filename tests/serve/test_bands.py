"""The shared band arithmetic (repro.hpcsched.bands).

One implementation serves both the kernel heuristics and the service
balancer, so these tests pin its semantics once for both consumers.
"""

import pytest

from repro.hpcsched.bands import (
    BandConfig,
    adaptive_mix,
    band_target,
    global_before_last,
)

CFG = BandConfig(low_util=65.0, high_util=85.0, min_prio=4, max_prio=6)


class TestBandTarget:
    def test_high_band_targets_max(self):
        assert band_target(92.0, current=4, cfg=CFG) == 6

    def test_low_band_targets_min(self):
        assert band_target(12.0, current=6, cfg=CFG) == 4

    def test_hysteresis_band_holds(self):
        for util in (65.1, 70.0, 80.0, 84.9):
            assert band_target(util, current=5, cfg=CFG) is None

    def test_band_edges_inclusive(self):
        assert band_target(85.0, current=4, cfg=CFG) == 6
        assert band_target(65.0, current=6, cfg=CFG) == 4

    def test_already_at_target(self):
        # The caller compares against current; the target is still
        # reported (the detector's "no change" check is theirs).
        assert band_target(95.0, current=6, cfg=CFG) == 6

    def test_step_mode_moves_one_level(self):
        step = BandConfig(
            low_util=65.0, high_util=85.0, min_prio=0, max_prio=7, step=True
        )
        assert band_target(95.0, current=3, cfg=step) == 4
        assert band_target(10.0, current=3, cfg=step) == 2
        assert band_target(95.0, current=7, cfg=step) == 7  # saturated

    def test_jump_mode_goes_straight_to_band_edge(self):
        wide = BandConfig(low_util=65.0, high_util=85.0, min_prio=0, max_prio=7)
        assert band_target(95.0, current=0, cfg=wide) == 7
        assert band_target(5.0, current=7, cfg=wide) == 0


class TestAdaptiveMix:
    def test_paper_formula(self):
        # U = G*Ug(i-1) + L*Ul(i) with the paper's defaults.
        assert adaptive_mix(0.1, 0.9, 0.5, 1.0) == pytest.approx(0.95)
        assert adaptive_mix(0.1, 0.9, 1.0, 0.0) == pytest.approx(0.1)

    def test_weights_are_explicit(self):
        assert adaptive_mix(0.5, 0.5, 0.2, 0.8) == pytest.approx(0.5)


class TestGlobalBeforeLast:
    def test_excludes_the_just_closed_iteration(self):
        assert global_before_last([1.0, 1.0, 0.0], 0.0) == pytest.approx(1.0)

    def test_single_sample_falls_back_to_last(self):
        assert global_before_last([0.7], 0.7) == pytest.approx(0.7)

    def test_empty_history(self):
        assert global_before_last([], None) == 0.0


def test_kernel_heuristics_share_the_band_code():
    """The kernel heuristics delegate to the same functions — a drift
    between kernel and service band behaviour is impossible by
    construction."""
    from repro.hpcsched import heuristics

    assert heuristics.band_target is band_target
    assert heuristics.adaptive_mix is adaptive_mix
    assert heuristics.global_before_last is global_before_last
