"""The durable job queue: journaling, transitions, crash recovery."""

import pytest

from repro.campaign.spec import RunSpec
from repro.serve import (
    JOB_CANCELLED,
    JOB_FAILED,
    JOB_OK,
    JOB_QUEUED,
    JOB_RUNNING,
    Job,
    JobQueue,
    job_id_for,
)


def make_job(tenant="t", seed=0, tag="") -> Job:
    spec = RunSpec(experiment="stub", params={"value": 1.0}, seed=seed)
    return Job(
        job_id=job_id_for(tenant, spec, tag),
        tenant=tenant,
        spec=spec.to_payload(),
        cache_key="k" + str(seed),
    )


@pytest.fixture
def queue(tmp_path):
    q = JobQueue(tmp_path / "jobs.db")
    yield q
    q.close()


class TestSubmission:
    def test_submit_journals_and_assigns_seq(self, queue):
        job, created = queue.submit(make_job(seed=1))
        assert created and job.seq > 0
        assert queue.get(job.job_id).state == JOB_QUEUED

    def test_resubmit_is_idempotent(self, queue):
        first, created1 = queue.submit(make_job(seed=1))
        again, created2 = queue.submit(make_job(seed=1))
        assert created1 and not created2
        assert again.job_id == first.job_id
        assert queue.depth() == 1

    def test_tag_makes_a_deliberate_duplicate(self, queue):
        queue.submit(make_job(seed=1))
        _, created = queue.submit(make_job(seed=1, tag="rerun"))
        assert created
        assert queue.depth() == 2

    def test_job_id_scoped_by_tenant(self):
        spec = RunSpec(experiment="stub", params={}, seed=0)
        assert job_id_for("a", spec) != job_id_for("b", spec)


class TestTransitions:
    def test_claim_bumps_attempt_and_execution_ledger(self, queue):
        job, _ = queue.submit(make_job())
        claimed = queue.claim(job.job_id, epoch=3)
        assert claimed.state == JOB_RUNNING
        assert claimed.attempt == 1
        assert claimed.executions == 1
        assert claimed.started_epoch == 3

    def test_claim_refuses_non_queued(self, queue):
        job, _ = queue.submit(make_job())
        queue.claim(job.job_id, epoch=0)
        assert queue.claim(job.job_id, epoch=0) is None  # already running
        queue.cancel(job.job_id, epoch=0)
        assert queue.claim(job.job_id, epoch=0) is None  # terminal

    def test_complete_stores_result(self, queue):
        job, _ = queue.submit(make_job())
        queue.claim(job.job_id, epoch=0)
        done = queue.complete(job.job_id, b'{"x": 1}', epoch=2)
        assert done.state == JOB_OK
        assert done.result == b'{"x": 1}'
        assert done.finished_epoch == 2

    def test_cache_hit_completes_straight_from_queued(self, queue):
        job, _ = queue.submit(make_job())
        done = queue.complete(job.job_id, b"{}", epoch=0, cache_hit=True)
        assert done.state == JOB_OK
        assert done.cache_hit
        assert done.executions == 0  # never claimed, never executed

    def test_late_result_never_overwrites_cancel(self, queue):
        """Cancel-mid-run: the journal turns terminal immediately; the
        in-flight worker result is discarded when it lands."""
        job, _ = queue.submit(make_job())
        queue.claim(job.job_id, epoch=0)
        assert queue.cancel(job.job_id, epoch=1).state == JOB_CANCELLED
        assert queue.complete(job.job_id, b"{}", epoch=1) is None
        final = queue.get(job.job_id)
        assert final.state == JOB_CANCELLED
        assert final.result is None

    def test_requeue_keeps_error_and_attempt(self, queue):
        job, _ = queue.submit(make_job())
        queue.claim(job.job_id, epoch=0)
        back = queue.requeue(job.job_id, "boom")
        assert back.state == JOB_QUEUED
        assert back.error == "boom"
        assert back.attempt == 1  # burned attempt survives the requeue

    def test_fail_is_terminal(self, queue):
        job, _ = queue.submit(make_job())
        queue.claim(job.job_id, epoch=0)
        assert queue.fail(job.job_id, "boom", epoch=4).state == JOB_FAILED
        assert queue.cancel(job.job_id, epoch=4) is None


class TestCrashRecovery:
    def test_running_jobs_requeued_on_reopen(self, queue, tmp_path):
        done_job, _ = queue.submit(make_job(seed=1))
        queue.claim(done_job.job_id, epoch=0)
        queue.complete(done_job.job_id, b'{"done": 1}', epoch=0)
        crashed, _ = queue.submit(make_job(seed=2))
        queue.claim(crashed.job_id, epoch=0)
        waiting, _ = queue.submit(make_job(seed=3))
        queue.close()  # kill -9: nothing else written

        reopened = JobQueue(tmp_path / "jobs.db")
        try:
            recovered = reopened.recover()
            assert [j.job_id for j in recovered] == [crashed.job_id]
            row = reopened.get(crashed.job_id)
            assert row.state == JOB_QUEUED
            assert row.recovered
            assert row.attempt == 1  # the crash was not the run's fault
            # Terminal and queued rows come back untouched.
            assert reopened.get(done_job.job_id).result == b'{"done": 1}'
            assert not reopened.get(done_job.job_id).recovered
            assert reopened.get(waiting.job_id).state == JOB_QUEUED
        finally:
            reopened.close()

    def test_recover_on_clean_journal_is_a_noop(self, queue):
        job, _ = queue.submit(make_job())
        assert queue.recover() == []
        assert queue.get(job.job_id).state == JOB_QUEUED


class TestQueries:
    def test_depth_counts_only_queued(self, queue):
        a, _ = queue.submit(make_job(seed=1))
        b, _ = queue.submit(make_job(seed=2))
        queue.submit(make_job(tenant="other", seed=1))
        queue.claim(a.job_id, epoch=0)
        assert queue.depth() == 2
        assert queue.depth("t") == 1
        assert queue.depth("other") == 1

    def test_queued_is_fifo_per_submission_order(self, queue):
        ids = [queue.submit(make_job(seed=i))[0].job_id for i in range(3)]
        assert [j.job_id for j in queue.queued()] == ids

    def test_counts_and_pending(self, queue):
        a, _ = queue.submit(make_job(seed=1))
        b, _ = queue.submit(make_job(seed=2))
        queue.claim(a.job_id, epoch=0)
        assert queue.counts() == {JOB_QUEUED: 1, JOB_RUNNING: 1}
        assert queue.pending() == 2
        queue.complete(a.job_id, b"{}", epoch=0)
        queue.cancel(b.job_id, epoch=0)
        assert queue.pending() == 0

    def test_tenants_listing(self, queue):
        queue.submit(make_job(tenant="zeta"))
        queue.submit(make_job(tenant="alpha"))
        assert queue.tenants() == ["alpha", "zeta"]
