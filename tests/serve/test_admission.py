"""Admission control: bounded queues, drain mode, retry hints."""

from repro.serve import AdmissionController


def test_accepts_under_both_bounds():
    ctl = AdmissionController(max_tenant_depth=4, max_total_depth=16)
    decision = ctl.admit(tenant_depth=3, total_depth=10)
    assert decision.ok
    assert ctl.rejections == 0


def test_tenant_bound_rejects_with_429():
    ctl = AdmissionController(max_tenant_depth=4, max_total_depth=16)
    decision = ctl.admit(tenant_depth=4, total_depth=5)
    assert not decision.ok
    assert decision.status == 429
    assert decision.retry_after is not None
    assert "tenant queue full" in decision.reason


def test_total_bound_rejects_even_light_tenants():
    ctl = AdmissionController(max_tenant_depth=4, max_total_depth=16)
    decision = ctl.admit(tenant_depth=0, total_depth=16)
    assert not decision.ok
    assert decision.status == 429
    assert "service-wide" in decision.reason


def test_draining_rejects_everything_with_503():
    ctl = AdmissionController(max_tenant_depth=4, max_total_depth=16)
    ctl.draining = True
    decision = ctl.admit(tenant_depth=0, total_depth=0)
    assert not decision.ok
    assert decision.status == 503


def test_rejections_counted():
    ctl = AdmissionController(max_tenant_depth=1, max_total_depth=1)
    ctl.admit(tenant_depth=1, total_depth=1)
    ctl.admit(tenant_depth=0, total_depth=1)
    assert ctl.rejections == 2
    assert ctl.snapshot()["rejections"] == 2
