"""The HTTP surface, exercised exactly as an external client would.

The service runs on its own thread and event loop (conftest
``ServiceThread``); the tests speak stdlib HTTP through
:class:`repro.serve.client.ServeClient`.  All scheduling assertions
drive the virtual clock over ``POST /v1/tick`` — no wall-clock sleeps
anywhere in the decision path.
"""

import pytest

from repro.serve import ServeError

from tests.serve.conftest import counted_run, gate_run, ok_run


def wait_all_ok(client, job_ids, timeout=30.0):
    """Follow the result stream until every job is terminal."""
    records = list(client.results(jobs=job_ids, follow=True, timeout=timeout))
    assert len(records) == len(job_ids)
    return {rec["job_id"]: rec for rec in records}


def test_healthz_and_metrics(http_service):
    client = http_service().client()
    health = client.healthz()
    assert health["ok"] and health["epoch"] == 0
    metrics = client.metrics()
    assert metrics["worker_slots"] == 1
    assert metrics["balancer"]["heuristic"] == "adaptive"
    assert metrics["states"] == {}


def test_submit_stream_and_status_roundtrip(http_service, tmp_path):
    client = http_service().client()
    batch = [ok_run(seed=s, value=2.0) for s in range(3)]
    doc = client.submit("alice", batch)
    assert len(doc["accepted"]) == 3 and doc["rejected"] == 0
    job_ids = [job["job_id"] for job in doc["accepted"]]

    by_id = wait_all_ok(client, job_ids)
    for seed, jid in enumerate(job_ids):
        rec = by_id[jid]
        assert rec["state"] == "OK"
        # ok_run computes value*2 + seed; the result travelled the full
        # HTTP + journal + cache path byte-faithfully.
        assert rec["result"]["value"] == 2.0 * 2 + seed

    status = client.status(job_ids[0])
    assert status["state"] == "OK" and status["tenant"] == "alice"
    tenant_view = client.tenant_status("alice")
    assert len(tenant_view["jobs"]) == 3

    # Resubmitting the same batch is idempotent: same ids, no new work.
    again = client.submit("alice", batch)
    assert [j["job_id"] for j in again["accepted"]] == job_ids
    assert client.metrics()["states"] == {"OK": 3}


def test_unknown_routes_and_jobs(http_service):
    client = http_service().client()
    with pytest.raises(ServeError) as err:
        client.status("alice/nope-000000000000")
    assert err.value.status == 404
    with pytest.raises(ServeError) as err:
        client._request("GET", "/v1/bogus")
    assert err.value.status == 404
    with pytest.raises(ServeError) as err:
        client._request("POST", "/v1/submit", {"tenant": "a", "runs": []})
    assert err.value.status == 400


def test_backpressure_answers_429_with_retry_after(http_service, tmp_path):
    gate_dir = tmp_path / "gates"
    gate_dir.mkdir()
    harness = http_service(max_tenant_depth=2, max_total_depth=8)
    client = harness.client()
    # Park the single worker so submissions stay queued.
    gate_doc = client.submit("g", [gate_run(gate_dir, "g1")])
    with pytest.raises(ServeError) as err:
        client.submit("x", [ok_run(seed=s) for s in range(5)])
    assert err.value.status == 429
    assert err.value.retry_after is not None
    doc = err.value.body
    assert len(doc["accepted"]) == 2 and doc["rejected"] == 3
    # Un-park, let everything finish.
    (gate_dir / "g1").touch()
    accepted = [j["job_id"] for j in doc["accepted"]]
    accepted.append(gate_doc["accepted"][0]["job_id"])
    wait_all_ok(client, accepted)


def test_cancel_over_http(http_service, tmp_path):
    gate_dir = tmp_path / "gates"
    gate_dir.mkdir()
    client = http_service().client()
    running = client.submit("t", [gate_run(gate_dir, "g1")])
    queued = client.submit("t", [ok_run(seed=7)])
    queued_id = queued["accepted"][0]["job_id"]
    cancelled = client.cancel(queued_id)
    assert cancelled["state"] == "CANCELLED"
    # Cancelling a terminal job is a conflict, not a silent success.
    with pytest.raises(ServeError) as err:
        client.cancel(queued_id)
    assert err.value.status == 409
    (gate_dir / "g1").touch()
    wait_all_ok(client, [running["accepted"][0]["job_id"]])


def test_drain_over_http_rejects_new_work_with_503(http_service):
    client = http_service().client()
    doc = client.submit("t", [ok_run(seed=s) for s in range(3)])
    drained = client.drain(timeout=20.0)
    assert drained["drained"] and drained["pending"] == 0
    rejected = client.submit("t", [ok_run(seed=9)], ok=False)
    assert rejected["_status"] == 503
    # Work accepted before the drain all completed.
    ids = [j["job_id"] for j in doc["accepted"]]
    assert all(
        rec["state"] == "OK"
        for rec in client.results(jobs=ids, follow=False)
    )


def test_cross_tenant_cache_sharing_over_http(http_service, tmp_path):
    count_dir = tmp_path / "counts"
    client = http_service().client()
    first = client.submit("alice", [counted_run(count_dir, seed=1)])
    a_id = first["accepted"][0]["job_id"]
    wait_all_ok(client, [a_id])
    second = client.submit("bob", [counted_run(count_dir, seed=1)])
    b_id = second["accepted"][0]["job_id"]
    rec = wait_all_ok(client, [b_id])[b_id]
    assert rec["cache_hit"] and rec["executions"] == 0
    metrics = client.metrics()
    assert metrics["cache"]["hits"] == 1
    tenants = {t["tenant"]: t for t in metrics["tenants"]}
    assert tenants["bob"]["cache_hits"] == 1


def test_process_workers_do_not_wedge_open_streams(http_service):
    """Regression: the first dispatch forks the process pool while the
    follow stream's connection is already open, so the forked workers
    inherit a duplicate of that socket's fd (fork ignores
    non-inheritable flags).  The server must half-close (FIN) the
    stream explicitly — with a plain close() the client would never
    see EOF and block until its timeout."""
    client = http_service(worker_mode="process").client(timeout=30.0)
    doc = client.submit("t", [ok_run(seed=41)])
    job_ids = [job["job_id"] for job in doc["accepted"]]
    # Open the stream immediately: the pool fork races this connection.
    records = list(client.results(jobs=job_ids, follow=True, timeout=30.0))
    assert [rec["state"] for rec in records] == ["OK"]
    assert records[0]["executions"] == 1  # really ran in a subprocess


def test_adaptive_fair_share_shifts_slots_to_the_laggard(http_service):
    """The ISSUE's e2e scenario: three tenants over HTTP, the backlogged
    tenant's priority rises within three virtual epochs, and after the
    tenants swap demand the Adaptive balancer re-converges with the
    priorities swapped — every epoch advanced explicitly via /v1/tick,
    no sleeps anywhere."""
    client = http_service().client()
    # Distinct params per tenant so every job truly executes (identical
    # specs would be answered from the shared cache without dispatch).
    values = {"alice": 1.0, "bob": 2.0, "carol": 3.0}

    def submit_round(tenant, seed):
        doc = client.submit(
            tenant, [ok_run(seed=seed, value=values[tenant])]
        )
        wait_all_ok(client, [j["job_id"] for j in doc["accepted"]])

    # Epoch 1: everyone shows up (registers + demands once).
    for tenant in ("alice", "bob", "carol"):
        submit_round(tenant, seed=0)
    tick = client.tick()
    assert tick["epoch"] == 1
    assert tick["balancer"]["priorities"] == {
        "alice": 6, "bob": 6, "carol": 6
    }

    # Epochs 2-3: only alice keeps demanding; bob and carol idle out.
    for seed in (1, 2):
        submit_round("alice", seed=seed)
        tick = client.tick()
    assert tick["epoch"] == 3
    assert tick["balancer"]["priorities"] == {
        "alice": 6, "bob": 4, "carol": 4
    }
    assert tick["balancer"]["state"] == "frozen"

    # The reversal: bob becomes the laggard with a backlog, alice goes
    # idle.  One epoch later the balancer has thawed and swapped the
    # priorities — slots now flow to bob.
    submit_round("bob", seed=10)
    tick = client.tick()
    assert tick["epoch"] == 4
    assert tick["balancer"]["priorities"] == {
        "alice": 4, "bob": 6, "carol": 4
    }

    # And the new regime is itself stable.
    submit_round("bob", seed=11)
    tick = client.tick()
    assert tick["balancer"]["state"] == "frozen"
    assert tick["balancer"]["priorities"]["bob"] == 6

    metrics = client.metrics()
    assert metrics["epoch"] == 5
    assert metrics["balancer"]["behaviour_changes"] == 1
    tenants = {t["tenant"]: t for t in metrics["tenants"]}
    assert tenants["alice"]["dispatches"] == 3
    assert tenants["bob"]["dispatches"] == 3
