"""Serve-test fixtures: run descriptors, in-loop waiting, a threaded
service harness for the HTTP tests."""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Dict, Optional

import pytest

from repro.serve import CampaignService, ServeConfig, ServeClient

STUBS = "tests.serve.stubs"
CAMPAIGN_STUBS = "tests.campaign.stubs"


def ok_run(seed: int = 0, value: float = 1.0) -> Dict[str, Any]:
    """A run descriptor for the always-succeeding campaign stub."""
    return {
        "experiment": "stub",
        "runner": f"{CAMPAIGN_STUBS}:ok_run",
        "params": {"value": value},
        "seed": seed,
    }


def gate_run(gate_dir: str, token: str, seed: int = 0) -> Dict[str, Any]:
    """A run descriptor that blocks until ``<gate_dir>/<token>`` exists."""
    return {
        "experiment": "stub",
        "runner": f"{STUBS}:gate_run",
        "params": {"gate_dir": str(gate_dir), "token": token},
        "seed": seed,
    }


def counted_run(count_dir: str, seed: int = 0) -> Dict[str, Any]:
    """A run descriptor leaving one marker file per execution."""
    return {
        "experiment": "stub",
        "runner": f"{STUBS}:counted_run",
        "params": {"count_dir": str(count_dir)},
        "seed": seed,
    }


def serve_config(root, **overrides) -> ServeConfig:
    """Test defaults: thread workers, manual clock, ephemeral port."""
    kw: Dict[str, Any] = dict(
        root=str(root),
        workers=1,
        worker_mode="thread",
        manual_clock=True,
        epoch_interval=None,
    )
    kw.update(overrides)
    return ServeConfig(**kw)


async def wait_until(
    pred: Callable[[], bool], timeout: float = 15.0, interval: float = 0.01
) -> None:
    """Poll ``pred`` on the loop until true (test plumbing only — the
    service's own decision path never sleeps)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not pred():
        if loop.time() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(interval)


class ServiceThread:
    """A campaign service on its own thread + event loop.

    The service object is constructed *inside* the loop thread (the
    SQLite journal is single-threaded by design), and the test talks
    to it over HTTP only — exactly like an external client.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.service: Optional[CampaignService] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.service = CampaignService(self.config)
        await self.service.start()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.service.stop()

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise TimeoutError("service never became ready")
        if self._error is not None:
            raise self._error
        return self

    def client(self, timeout: float = 30.0) -> ServeClient:
        assert self.service is not None
        return ServeClient(
            self.config.host, self.service.port, timeout=timeout
        )

    def stop(self) -> None:
        if self.loop is not None and self._stop is not None:
            self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        if self._thread.is_alive():
            raise TimeoutError("service thread failed to stop")
        if self._error is not None:
            raise self._error


@pytest.fixture
def http_service(tmp_path):
    """A running threaded service; yields the harness, always stops it."""
    harnesses = []

    def _start(**overrides) -> ServiceThread:
        root = tmp_path / f"svc{len(harnesses)}"
        harness = ServiceThread(serve_config(root, **overrides)).start()
        harnesses.append(harness)
        return harness

    yield _start
    for harness in harnesses:
        harness.stop()
