"""Event broker and NDJSON result streaming."""

import asyncio
import json

from repro.serve.state import JOB_OK, JOB_QUEUED, Job
from repro.serve.stream import EventBroker, ndjson_line, stream_jobs


def make_job(jid: str, state: str = JOB_QUEUED) -> Job:
    return Job(job_id=jid, tenant="t", spec={"experiment": "stub"}, state=state)


def test_ndjson_line_is_compact_and_terminated():
    line = ndjson_line({"b": 1, "a": 2})
    assert line == b'{"a":2,"b":1}\n'


def test_broker_wait_wakes_on_publish():
    async def scenario():
        broker = EventBroker()
        seen = broker.version
        waiter = asyncio.ensure_future(broker.wait(seen))
        await asyncio.sleep(0)  # let the waiter block
        broker.publish()
        assert await asyncio.wait_for(waiter, timeout=5) == seen + 1

    asyncio.run(scenario())


def test_broker_wait_returns_immediately_when_behind():
    async def scenario():
        broker = EventBroker()
        broker.publish()
        await asyncio.sleep(0)
        # A follower that has seen version 0 must not block.
        assert await asyncio.wait_for(broker.wait(0), timeout=5) >= 1

    asyncio.run(scenario())


def test_stream_emits_terminal_jobs_immediately():
    async def scenario():
        jobs = {
            "a": make_job("a", JOB_OK),
            "b": make_job("b", JOB_OK),
        }
        broker = EventBroker()
        lines = [
            json.loads(line)
            async for line in stream_jobs(
                ["a", "b"], jobs.get, broker, with_results=False
            )
        ]
        assert [rec["job_id"] for rec in lines] == ["a", "b"]
        assert all(rec["state"] == "OK" for rec in lines)

    asyncio.run(scenario())


def test_stream_reports_unknown_ids_instead_of_hanging():
    async def scenario():
        broker = EventBroker()
        lines = [
            json.loads(line)
            async for line in stream_jobs(["nope"], lambda _jid: None, broker)
        ]
        assert lines == [{"job_id": "nope", "state": "UNKNOWN"}]

    asyncio.run(scenario())


def test_stream_follows_jobs_to_completion():
    async def scenario():
        jobs = {"a": make_job("a", JOB_OK), "b": make_job("b", JOB_QUEUED)}
        broker = EventBroker()
        received = []

        async def consume():
            async for line in stream_jobs(
                ["a", "b"], jobs.get, broker, with_results=False
            ):
                received.append(json.loads(line))

        consumer = asyncio.ensure_future(consume())
        await asyncio.sleep(0.01)
        assert [rec["job_id"] for rec in received] == ["a"]  # b still queued
        jobs["b"] = make_job("b", JOB_OK)
        broker.publish()
        await asyncio.wait_for(consumer, timeout=5)
        assert [rec["job_id"] for rec in received] == ["a", "b"]

    asyncio.run(scenario())


def test_stream_catches_completion_during_initial_sweep():
    """A job completing between the stream's snapshot and its first
    wait() must not be missed (the version is snapshotted before the
    sweep, so the change is visible to the first wait)."""

    async def scenario():
        jobs = {"a": make_job("a", JOB_QUEUED)}
        broker = EventBroker()

        gen = stream_jobs(["a"], jobs.get, broker, with_results=False)
        # Nothing emitted yet; complete the job and publish while the
        # stream hasn't started waiting.
        jobs["a"] = make_job("a", JOB_OK)
        broker.publish()
        line = await asyncio.wait_for(gen.__anext__(), timeout=5)
        assert json.loads(line)["state"] == "OK"

    asyncio.run(scenario())
