"""Differential property suite: ``FastEventQueue`` against the heap
``EventQueue`` under random operation interleavings.

The accelerated queue is a drop-in replacement for the heap queue, so
the strongest oracle is the heap itself: drive both queues through the
same randomized ``push``/``cancel``/``pop``/``peek``/``clear``/
``compact`` sequences and require event-for-event agreement — same pop
order (time, priority, seq), same ``peek_time``, same ``len()``, same
``live_count_check`` live totals — at every step.  The bucket queue's
own counter invariants (derived ``len``, corpse accounting) are checked
against an O(n) scan after each step, mirroring
``test_queue_counter_invariants`` for the heap representation.
"""

from hypothesis import given, settings, strategies as st

from repro.simcore.events import EventQueue
from repro.simcore.fastcore import FastEventQueue


def _scan_check(q: FastEventQueue) -> None:
    """Assert the derived O(1) length against an O(n) bucket scan."""
    live = 0
    corpses = 0
    for b in q._buckets.values():
        evs = b if type(b) is list else [b]
        for ev in evs:
            if ev[1] is not None:
                live += 1
            else:
                corpses += 1
    assert len(q) == live
    assert q._corpses == corpses >= 0
    tracked, actual = q.live_count_check()
    assert tracked == actual == live


#: op, arg — arg picks times/handles; small time pool forces same-instant
#: collisions (singleton→list bucket promotion) and tie-breaking.
_OPS = st.tuples(
    st.sampled_from(["push", "pushprio", "cancel", "pop", "peek", "clear", "compact"]),
    st.integers(min_value=0, max_value=1 << 16),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_OPS, max_size=120))
def test_property_fast_queue_agrees_with_heap(ops):
    heap = EventQueue()
    fast = FastEventQueue()
    pairs = []  # (heap Event, FastEvent) handles, aligned
    t = 0.0
    for op, arg in ops:
        if op in ("push", "pushprio"):
            t += (arg % 5) * 0.25  # % 5 == 0 repeats the instant
            prio = (arg % 7) if op == "pushprio" else 0
            he = heap.push(t, lambda: None, priority=prio, label="x")
            fe = fast.push(t, lambda: None, priority=prio, label="x")
            assert fe.time == he.time == t
            assert fe.priority == he.priority == prio
            assert fe.seq == he.seq
            pairs.append((he, fe))
        elif op == "cancel" and pairs:
            he, fe = pairs[arg % len(pairs)]
            he.cancel()
            fe.cancel()
            assert fe.cancelled == he.cancelled
        elif op == "pop":
            he = heap.pop()
            fe = fast.pop()
            if he is None:
                assert fe is None
            else:
                assert fe is not None
                assert (fe.time, fe.priority, fe.seq) == (
                    he.time,
                    he.priority,
                    he.seq,
                )
                assert not fe.cancelled and not he.cancelled
        elif op == "peek":
            assert fast.peek_time() == heap.peek_time()
        elif op == "clear":
            heap.clear()
            fast.clear()
        elif op == "compact":
            heap._compact()
            fast._compact()
        assert len(fast) == len(heap)
        _scan_check(fast)

    # Drain both to exhaustion: total order must agree to the end.
    while True:
        he = heap.pop()
        fe = fast.pop()
        if he is None:
            assert fe is None
            break
        assert (fe.time, fe.priority, fe.seq) == (he.time, he.priority, he.seq)


@settings(max_examples=100, deadline=None)
@given(st.lists(_OPS, max_size=80))
def test_property_iter_entries_agrees_with_heap(ops):
    """``iter_entries`` (the sharded runner's scan API) yields the same
    live (time, label, seq) multiset on both representations."""
    heap = EventQueue()
    fast = FastEventQueue()
    pairs = []
    t = 0.0
    for op, arg in ops:
        if op in ("push", "pushprio"):
            t += (arg % 5) * 0.25
            prio = (arg % 7) if op == "pushprio" else 0
            lbl = f"l{arg % 3}"
            pairs.append(
                (
                    heap.push(t, lambda: None, priority=prio, label=lbl),
                    fast.push(t, lambda: None, priority=prio, label=lbl),
                )
            )
        elif op == "cancel" and pairs:
            he, fe = pairs[arg % len(pairs)]
            he.cancel()
            fe.cancel()
        elif op == "pop":
            heap.pop()
            fast.pop()
        elif op == "clear":
            heap.clear()
            fast.clear()
        elif op == "compact":
            heap._compact()
            fast._compact()
    h_view = sorted((tm, ev.label, ev.seq) for tm, ev in heap.iter_entries())
    f_view = sorted((tm, ev.label, ev.seq) for tm, ev in fast.iter_entries())
    assert f_view == h_view


def test_cancel_after_delivery_is_inert():
    """Cancelling an already-popped event must not corrupt counters
    (the kernel cancels phase events that may have just delivered)."""
    q = FastEventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    popped = q.pop()
    assert popped is ev
    ev.cancel()  # delivered, not pending: counters untouched
    assert len(q) == 1
    _scan_check(q)
    ev.cancel()  # double-cancel equally inert
    assert len(q) == 1
    _scan_check(q)


def test_same_instant_append_after_partial_drain_keeps_order():
    """Regression (hypothesis-found): after a sort + partial drain
    leaves a nonzero-priority event at a bucket's tail, a later
    priority-0 push at the same instant outranks that tail and must
    flag the bucket — through every inlined push site (queue.push,
    FastSimulator.at, FastSimulator.after)."""
    from repro.simcore.fastcore import FastSimulator

    def sites():
        q = FastEventQueue()
        yield q, lambda prio, lbl: q.push(0.25, lambda: None, priority=prio, label=lbl)
        sim = FastSimulator()
        yield sim.queue, lambda prio, lbl: sim.at(0.25, lambda: None, priority=prio, label=lbl)
        sim2 = FastSimulator()
        yield sim2.queue, lambda prio, lbl: sim2.after(0.25, lambda: None, priority=prio, label=lbl)

    for q, push in sites():
        push(1, "hi")
        push(0, "lo1")
        first = q.pop()  # sorts the bucket, delivers lo1, hi stays as tail
        assert first.label == "lo1"
        push(0, "lo2")  # outranked by the hi tail: must flag, not append blind
        assert q.pop().label == "lo2"
        assert q.pop().label == "hi"
        assert q.pop() is None


def test_in_order_priority_appends_do_not_flag():
    """A priority push that lands in order (p5 after p5, or p5 after a
    lower-priority tail) must not mark the bucket unsorted — barrier
    instants rely on this to avoid one tail sort per delivered event."""
    q = FastEventQueue()
    q.push(1.0, lambda: None, priority=1, label="w1")
    q.push(1.0, lambda: None, priority=1, label="w2")  # in order: no flag
    q.push(1.0, lambda: None, priority=5, label="r1")  # in order: no flag
    q.push(1.0, lambda: None, priority=5, label="r2")  # in order: no flag
    assert 1.0 not in q._unsorted
    q.push(1.0, lambda: None, priority=3, label="mid")  # outranked tail: flag
    assert 1.0 in q._unsorted
    assert [q.pop().label for _ in range(5)] == ["w1", "w2", "mid", "r1", "r2"]


def test_singleton_bucket_promotion_keeps_order():
    """Second push at an instant promotes the singleton to a list; a
    priority push must still deliver in (priority, seq) order."""
    q = FastEventQueue()
    order = []
    q.push(1.0, lambda: order.append("p5"), priority=5)
    q.push(1.0, lambda: order.append("p0a"), priority=0)
    q.push(1.0, lambda: order.append("p0b"), priority=0)
    while True:
        ev = q.pop()
        if ev is None:
            break
        ev.fn()
    assert order == ["p0a", "p0b", "p5"]
