"""Corpse/live counter invariants under adversarial interleavings.

The queue answers ``len()`` from an O(1) ``_live`` counter and schedules
bulk compaction from an O(1) ``_corpses`` counter.  Four code paths
mutate those counters: ``Event.cancel`` (with its compaction threshold),
``EventQueue.pop``/``peek_time``/``clear``, and the three hand-flattened
lazy-pop sites in ``Simulator.run`` (batched, unbatched, general).  This
suite drives random interleavings — including ``clear()`` fired from
inside a handler mid-drain and cancels of other pending events from
inside a handler — and asserts after every step that both counters match
an O(n) scan of the heap.

This suite pins ``core="heap"``: it asserts heap-representation
internals (``_heap``, ``_live``).  The accelerated core's analogous
invariants live in ``test_fastcore_queue_property.py``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simcore.engine import Simulator
from repro.simcore.events import EventQueue


def check_counters(q: EventQueue) -> None:
    """Assert the O(1) counters against an O(n) heap scan."""
    live = sum(1 for e in q._heap if not e[3].cancelled)
    corpses = sum(1 for e in q._heap if e[3].cancelled)
    assert len(q) == q._live == live
    assert q._corpses == corpses
    assert q._corpses >= 0


# ----------------------------------------------------------------------
# Pure-queue interleavings (no engine)
# ----------------------------------------------------------------------
#: op, arg — arg indexes into the currently-held handles where relevant.
_OPS = st.tuples(
    st.sampled_from(["push", "cancel", "pop", "peek", "clear", "compact"]),
    st.integers(min_value=0, max_value=1 << 16),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_OPS, max_size=120))
def test_property_counters_match_scan_under_random_ops(ops):
    q = EventQueue()
    handles = []
    t = 0.0
    for op, arg in ops:
        if op == "push":
            t += (arg % 7) * 0.125  # repeats exercise tie-breaking
            handles.append(q.push(t, lambda: None))
        elif op == "cancel" and handles:
            # Double-cancels and cancels of popped events included.
            handles[arg % len(handles)].cancel()
        elif op == "pop":
            q.pop()
        elif op == "peek":
            q.peek_time()
        elif op == "clear":
            q.clear()
        elif op == "compact":
            q._compact()
        check_counters(q)


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=65, max_value=300),
    st.integers(min_value=0, max_value=64),
)
def test_property_compaction_threshold_never_drifts(n_cancel, n_keep):
    # Push enough events to trip the corpses>64, corpses>live threshold
    # from inside Event.cancel, in every order hypothesis picks.
    q = EventQueue()
    doomed = [q.push(float(i), lambda: None) for i in range(n_cancel)]
    for i in range(n_keep):
        q.push(float(n_cancel + i), lambda: None)
    for ev in doomed:
        ev.cancel()
        check_counters(q)
    assert len(q) == n_keep


# ----------------------------------------------------------------------
# Engine-loop interleavings: the three lazy-pop sites
# ----------------------------------------------------------------------
def _storm(sim, n_events, clear_at, cancel_stride):
    """Schedule a burst where handler ``clear_at`` clears the queue
    mid-drain and every ``cancel_stride``-th handler cancels the next
    pending event (possibly one at the same instant)."""
    pending = []

    def handler(i):
        if i == clear_at:
            sim.queue.clear()
            return
        if cancel_stride and i % cancel_stride == 0:
            for ev in pending:
                if ev.active and ev._queue is not None:
                    ev.cancel()
                    break
        check_counters(sim.queue)

    for i in range(n_events):
        # Duplicate timestamps exercise the batched same-instant group.
        pending.append(
            sim.at((i // 4) * 0.001, lambda i=i: handler(i), priority=i % 3)
        )
    return pending


@pytest.mark.parametrize("fastforward", [True, False])
@pytest.mark.parametrize("clear_at", [-1, 0, 17, 39])
@pytest.mark.parametrize("cancel_stride", [0, 1, 3])
def test_engine_drain_counters(fastforward, clear_at, cancel_stride):
    sim = Simulator(fastforward=fastforward, core="heap")
    _storm(sim, 40, clear_at, cancel_stride)
    sim.run()
    check_counters(sim.queue)
    assert len(sim.queue) == 0


@pytest.mark.parametrize("fastforward", [True, False])
def test_engine_general_path_counters(fastforward):
    # until= forces the general (peek-first) path regardless of the flag.
    sim = Simulator(fastforward=fastforward, core="heap")
    pending = _storm(sim, 40, clear_at=-1, cancel_stride=2)
    sim.run(until=0.004)
    check_counters(sim.queue)
    sim.run(until=1.0)
    check_counters(sim.queue)
    assert len(sim.queue) == 0
    assert all(not ev.active or ev._queue is None for ev in pending)


def test_cancel_currently_firing_event_is_counter_neutral():
    sim = Simulator(core="heap")
    holder = []

    def fire():
        holder[0].cancel()  # self-cancel mid-delivery: entry already popped
        check_counters(sim.queue)

    holder.append(sim.at(0.0, fire))
    sim.run()
    check_counters(sim.queue)


@pytest.mark.parametrize("fastforward", [True, False])
def test_mass_cancel_inside_handler_compacts_mid_drain(fastforward):
    # One handler cancels 100 future events in a burst, tripping the
    # corpses>64 compaction threshold from inside Event.cancel while
    # Simulator.run holds its local binding to the heap list.  The
    # rebuild mutates the list in place, so the drain must continue
    # seamlessly and the counters must survive the rebuild.
    sim = Simulator(fastforward=fastforward, core="heap")
    fired = []
    doomed = [
        sim.at(1.0 + i * 0.001, lambda i=i: fired.append(i))
        for i in range(100)
    ]
    survivor = sim.at(2.0, lambda: fired.append("survivor"))

    def massacre():
        for ev in doomed:
            ev.cancel()
        check_counters(sim.queue)
        # Compaction ran inside cancel at the 65th corpse; the later
        # cancels re-accumulate but never reach the original 100.
        assert sim.queue._corpses < len(doomed)

    sim.at(0.5, massacre)
    sim.run()
    assert fired == ["survivor"]
    assert survivor._queue is None
    check_counters(sim.queue)


def test_clear_during_batched_same_instant_group():
    # Three events at one instant; the first clears the queue.  The
    # batched loop's same-instant continuation must not double-count
    # the two entries clear() already removed.
    sim = Simulator(fastforward=True, core="heap")
    fired = []
    sim.at(0.0, lambda: (fired.append("a"), sim.queue.clear()), priority=0)
    sim.at(0.0, lambda: fired.append("b"), priority=1)
    sim.at(0.0, lambda: fired.append("c"), priority=2)
    sim.run()
    assert fired == ["a"]
    check_counters(sim.queue)
