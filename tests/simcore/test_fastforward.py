"""Fast-forward engine primitives: flag resolution, batched same-instant
delivery, and the ChainFamily park/re-arm/reap/retime arithmetic."""

import pytest

from repro.simcore.engine import SimulationError, Simulator
from repro.simcore.fastforward import ChainFamily, fastforward_enabled


# ----------------------------------------------------------------------
# Flag resolution
# ----------------------------------------------------------------------
def test_flag_defaults_on(monkeypatch):
    monkeypatch.delenv("REPRO_FASTFORWARD", raising=False)
    assert fastforward_enabled() is True


@pytest.mark.parametrize("value", ["", "0", "false", "off", "no", " OFF "])
def test_flag_env_off_values(monkeypatch, value):
    monkeypatch.setenv("REPRO_FASTFORWARD", value)
    assert fastforward_enabled() is False


@pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
def test_flag_env_on_values(monkeypatch, value):
    monkeypatch.setenv("REPRO_FASTFORWARD", value)
    assert fastforward_enabled() is True


def test_flag_override_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_FASTFORWARD", "0")
    assert fastforward_enabled(True) is True
    monkeypatch.setenv("REPRO_FASTFORWARD", "1")
    assert fastforward_enabled(False) is False


def test_simulator_records_flag(monkeypatch):
    monkeypatch.setenv("REPRO_FASTFORWARD", "0")
    assert Simulator().fastforward is False
    assert Simulator(fastforward=True).fastforward is True


# ----------------------------------------------------------------------
# Batched same-instant delivery
# ----------------------------------------------------------------------
def test_batched_delivery_preserves_priority_order():
    sim = Simulator(fastforward=True)
    order = []
    sim.at(1.0, lambda: order.append("p5"), priority=5)
    sim.at(1.0, lambda: order.append("p0"), priority=0)
    sim.at(1.0, lambda: order.append("p2"), priority=2)
    sim.at(2.0, lambda: order.append("later"))
    sim.run()
    assert order == ["p0", "p2", "p5", "later"]


def test_batched_delivery_sees_events_scheduled_at_same_instant():
    # A handler scheduling more work at the current instant must have it
    # delivered inside the same batch, in priority order.
    sim = Simulator(fastforward=True)
    order = []

    def first():
        order.append("first")
        sim.at(1.0, lambda: order.append("injected"), priority=9)

    sim.at(1.0, first, priority=0)
    sim.at(1.0, lambda: order.append("second"), priority=1)
    sim.run()
    assert order == ["first", "second", "injected"]


def test_batched_delivery_skips_events_cancelled_within_batch():
    sim = Simulator(fastforward=True)
    order = []
    victim = sim.at(1.0, lambda: order.append("victim"), priority=5)
    sim.at(1.0, lambda: victim.cancel(), priority=0)
    sim.at(1.0, lambda: order.append("kept"), priority=7)
    sim.run()
    assert order == ["kept"]


def test_stop_inside_batch_halts_before_next_event():
    sim = Simulator(fastforward=True)
    order = []
    sim.at(1.0, lambda: (order.append("a"), sim.stop()), priority=0)
    sim.at(1.0, lambda: order.append("b"), priority=1)
    sim.run()
    assert order == ["a"]
    assert len(sim.queue) == 1  # "b" still pending


def test_stop_when_inside_batch_halts_before_next_event():
    sim = Simulator(fastforward=True)
    order = []
    sim.at(1.0, lambda: order.append("a"), priority=0)
    sim.at(1.0, lambda: order.append("b"), priority=1)
    sim.run(stop_when=lambda: bool(order))
    assert order == ["a"]


def test_batched_loop_enforces_event_limit():
    sim = Simulator(max_events=10, fastforward=True)

    def rearm():
        sim.at(sim.now, rearm)

    sim.at(0.0, rearm)
    with pytest.raises(SimulationError, match="event limit"):
        sim.run()


def test_cur_event_prio_visible_during_delivery():
    sim = Simulator(fastforward=True, core="heap")
    seen = []
    sim.at(1.0, lambda: seen.append(sim.cur_event_prio), priority=4)
    sim.at(1.0, lambda: seen.append(sim.cur_event_prio), priority=7)
    sim.run()
    assert seen == [4, 7]
    assert sim.cur_event_prio is None


def test_cur_event_prio_visible_with_ff_users_fastcore():
    # The accelerated core tracks the delivering event's priority only
    # while fast-forward chain families are registered (``_ff_users``) —
    # they are the sole consumer of ``cur_event_prio``.  Kernels bump
    # the counter at construction.
    sim = Simulator(fastforward=True, core="fast")
    sim._ff_users += 1
    seen = []
    sim.at(1.0, lambda: seen.append(sim.cur_event_prio), priority=4)
    sim.at(1.0, lambda: seen.append(sim.cur_event_prio), priority=7)
    sim.run()
    assert seen == [4, 7]
    assert sim.cur_event_prio is None


# ----------------------------------------------------------------------
# ChainFamily arithmetic
# ----------------------------------------------------------------------
def _family(sim, interval=0.1, priority=6):
    return ChainFamily(sim, interval, priority)


def _parked_chain(fam, anchor, inert=lambda: False, key="c0"):
    chain = fam.add(key, f"chain/{key}", anchor, inert)
    chain.fire = lambda: None
    fam.park(chain)
    return chain


def _serial_walk(anchor, interval, now):
    """The serial chain's fire instants: anchor, anchor+i, ... — the
    first point at or after ``now``, via the same float accumulation."""
    t = anchor
    while t < now:
        t += interval
    return t


def test_reinstate_walk_matches_serial_float_accumulation():
    sim = Simulator(fastforward=True)
    fam = _family(sim, interval=0.1)  # 0.1 is inexact in binary
    chain = _parked_chain(fam, anchor=0.05)
    armed = {}

    def invalidate():
        fam.unpark_ready()
        armed["time"] = chain.next_time

    sim.at(0.347, invalidate, priority=1)
    sim.run()
    expected = _serial_walk(0.05, 0.1, 0.347)
    assert armed["time"] == expected  # bit-equal, not approx
    assert chain.event is not None and chain.event.time == expected
    assert fam.parked == 0
    assert fam.elided == 3  # 0.05, 0.15, 0.25 skipped analytically


def test_reinstate_tie_elides_point_when_chain_fires_earlier():
    # Invalidating event at priority 8 > chain priority 6: the serial
    # chain fire at the same instant preceded it (and was a no-op), so
    # the collided point is already elided and the re-arm lands one
    # interval later.
    sim = Simulator(fastforward=True)
    fam = _family(sim, interval=0.25, priority=6)
    chain = _parked_chain(fam, anchor=0.25)
    sim.at(0.75, lambda: fam.unpark_ready(), priority=8)  # == chain point
    sim.run()
    assert chain.next_time == 1.0
    assert fam.elided == 3


def test_reinstate_tie_rearms_at_now_when_chain_fires_later():
    # Priority 1 < chain priority 6: the serial heap orders the chain
    # fire after the invalidating event, so it must be re-armed at the
    # collided instant itself.
    sim = Simulator(fastforward=True)
    fam = _family(sim, interval=0.25, priority=6)
    chain = _parked_chain(fam, anchor=0.25)
    fired = []
    chain.fire = lambda: fired.append(sim.now)
    sim.at(0.75, lambda: fam.unpark_ready(), priority=1)
    sim.run()
    assert fired == [0.75]


def test_unpark_ready_skips_still_inert_chains():
    sim = Simulator(fastforward=True)
    fam = _family(sim)
    inert_chain = _parked_chain(fam, 0.05, inert=lambda: True, key="inert")
    live_chain = _parked_chain(fam, 0.05, inert=lambda: False, key="live")
    sim.at(0.2, fam.unpark_ready, priority=1)
    sim.run()
    assert inert_chain.event is None  # still parked
    assert live_chain.event is not None or live_chain.next_time > 0.2
    assert fam.parked == 1


def test_dead_window_reaps_chains_whose_points_fell_inside():
    sim = Simulator(fastforward=True)
    fam = _family(sim, interval=0.1)
    doomed = _parked_chain(fam, anchor=0.35, key="doomed")
    survivor = _parked_chain(fam, anchor=0.62, key="survivor")

    def run_window():
        fam.mark_dead(0.3)

    def revive():
        fam.reap(sim.now)

    sim.at(0.3, run_window, priority=1)
    sim.at(0.6, revive, priority=1)
    sim.run()
    # doomed's first point 0.35 ∈ [0.3, 0.6) — the serial chain died
    # there; survivor's first point 0.62 is past the revival.
    assert "doomed" not in fam.chains
    assert doomed is not fam.chains.get("doomed")
    assert fam.chains["survivor"] is survivor
    assert survivor.next_time == 0.62
    assert fam.parked == 1
    assert fam.dead_at is None


def test_mark_dead_first_death_wins():
    sim = Simulator(fastforward=True)
    fam = _family(sim)
    fam.mark_dead(1.0)
    fam.mark_dead(2.0)
    assert fam.dead_at == 1.0


def test_retime_walks_old_interval_up_to_change_instant():
    sim = Simulator(fastforward=True)
    fam = _family(sim, interval=0.1)
    chain = _parked_chain(fam, anchor=0.05)

    def change():
        fam.retime(0.5)

    sim.at(0.33, change, priority=1)
    sim.run()
    # Serial fires before the change used 0.1: 0.05, 0.15, 0.25, then
    # the next anchor 0.35 ≥ change instant; from there 0.5 applies.
    assert chain.next_time == _serial_walk(0.05, 0.1, 0.33)
    assert fam.interval == 0.5


def test_retime_same_interval_is_noop():
    sim = Simulator(fastforward=True)
    fam = _family(sim, interval=0.1)
    chain = _parked_chain(fam, anchor=0.05)
    fam.retime(0.1)
    assert chain.next_time == 0.05


def test_dissolve_cancels_armed_and_forgets_parked():
    sim = Simulator(fastforward=True)
    fam = _family(sim)
    armed = fam.add("armed", "chain/armed", 1.0, lambda: False)
    armed.fire = lambda: None
    fam.arm(armed)
    _parked_chain(fam, 0.5, key="parked")
    dropped = fam.dissolve()
    assert {c.key for c in dropped} == {"armed", "parked"}
    assert not fam.chains and fam.parked == 0
    assert len(sim.queue) == 0  # armed event cancelled
