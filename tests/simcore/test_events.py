"""Unit tests for the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.simcore.events import EventQueue


def test_push_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(2.0, lambda: fired.append("b"))
    q.push(1.0, lambda: fired.append("a"))
    q.push(3.0, lambda: fired.append("c"))
    while (ev := q.pop()) is not None:
        ev.fn()
    assert fired == ["a", "b", "c"]


def test_priority_breaks_time_ties():
    q = EventQueue()
    order = []
    q.push(1.0, lambda: order.append("low"), priority=5)
    q.push(1.0, lambda: order.append("high"), priority=0)
    q.push(1.0, lambda: order.append("mid"), priority=2)
    while (ev := q.pop()) is not None:
        ev.fn()
    assert order == ["high", "mid", "low"]


def test_insertion_order_breaks_full_ties():
    q = EventQueue()
    order = []
    for i in range(10):
        q.push(1.0, lambda i=i: order.append(i), priority=0)
    while (ev := q.pop()) is not None:
        ev.fn()
    assert order == list(range(10))


def test_cancelled_events_are_skipped():
    q = EventQueue()
    ev1 = q.push(1.0, lambda: None, label="dropme")
    q.push(2.0, lambda: None, label="keep")
    ev1.cancel()
    assert not ev1.active
    got = q.pop()
    assert got is not None and got.label == "keep"


def test_peek_time_skips_cancelled():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    assert q.peek_time() == 1.0
    ev.cancel()
    assert q.peek_time() == 5.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None


def test_len_excludes_lazily_cancelled_events():
    """Regression: len() used to report heap entries, counting cancelled
    corpses awaiting lazy removal.  It must track *pending* events."""
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    assert len(q) == 1
    ev.cancel()
    assert len(q) == 0  # cancelled immediately; lazy heap removal is internal
    assert q.pop() is None
    assert len(q) == 0


def test_len_tracks_push_cancel_pop_mix():
    q = EventQueue()
    handles = [q.push(float(i), lambda: None) for i in range(5)]
    assert len(q) == 5
    handles[0].cancel()
    handles[3].cancel()
    handles[3].cancel()  # double-cancel must not double-decrement
    assert len(q) == 3
    assert q.pop() is handles[1]
    assert len(q) == 2
    tracked, actual = q.live_count_check()
    assert tracked == actual == 2


def test_clear():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.clear()
    assert q.pop() is None
    assert len(q) == 0


def test_clear_marks_held_handles_cancelled():
    """Regression: clear() used to drop events without flagging them, so
    held handles kept reporting active for events that can never fire."""
    q = EventQueue()
    ev1 = q.push(1.0, lambda: None)
    ev2 = q.push(2.0, lambda: None)
    q.clear()
    assert ev1.cancelled and not ev1.active
    assert ev2.cancelled and not ev2.active
    # A cleared handle can be cancel()ed again without corrupting the count.
    ev1.cancel()
    assert len(q) == 0
    tracked, actual = q.live_count_check()
    assert tracked == actual == 0


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
def test_property_pop_order_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while (ev := q.pop()) is not None:
        popped.append(ev.time)
    assert popped == sorted(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.integers(0, 5)),
        min_size=1,
        max_size=100,
    ),
    st.sets(st.integers(0, 99)),
)
def test_property_cancellation_removes_exactly_the_cancelled(entries, cancel_idx):
    q = EventQueue()
    handles = [q.push(t, lambda: None, priority=p) for t, p in entries]
    for i in cancel_idx:
        if i < len(handles):
            handles[i].cancel()
    surviving = sum(1 for h in handles if not h.cancelled)
    popped = 0
    while q.pop() is not None:
        popped += 1
    assert popped == surviving


# ----------------------------------------------------------------------
# Interleaved push/cancel/pop against a reference model
# ----------------------------------------------------------------------
#: Times drawn from a tiny pool so timestamp ties (the FIFO-critical
#: case) occur constantly; priorities likewise.
_interleavings = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.sampled_from([0.0, 1.0, 1.0, 2.0, 2.5]),
            st.sampled_from([0, 0, 1, 2]),
        ),
        st.tuples(st.just("cancel"), st.integers(0, 150)),
        st.tuples(st.just("pop")),
    ),
    min_size=1,
    max_size=150,
)


@given(_interleavings)
def test_property_interleaved_ops_match_reference_model(ops):
    """Arbitrary push/cancel/pop interleavings: the queue must behave
    exactly like a sorted list keyed by (time, priority, arrival index)
    with cancelled entries dropped — i.e. equal-timestamp events keep
    stable FIFO order and a cancelled event is never delivered."""
    q = EventQueue()
    handles = []  # real Event handles, in push order
    model = []  # [(time, priority, arrival), ...] still pending
    cancelled = set()  # arrival indices cancelled

    for op in ops:
        if op[0] == "push":
            _, t, prio = op
            arrival = len(handles)
            handles.append(q.push(t, lambda: None, priority=prio))
            model.append((t, prio, arrival))
        elif op[0] == "cancel":
            _, i = op
            if i < len(handles):
                handles[i].cancel()
                cancelled.add(i)
        else:  # pop
            live = sorted(e for e in model if e[2] not in cancelled)
            got = q.pop()
            if not live:
                assert got is None
                model.clear()
                continue
            expect = live[0]
            assert got is not None and not got.cancelled
            assert (got.time, got.priority) == (expect[0], expect[1])
            assert handles[expect[2]] is got  # FIFO among full ties
            model.remove(expect)
        # The live count must track the model after every operation.
        assert len(q) == sum(1 for e in model if e[2] not in cancelled)

    # Drain: the remainder must come out in model order, no cancelled
    # event ever surfacing.
    rest = sorted(e for e in model if e[2] not in cancelled)
    while (ev := q.pop()) is not None:
        expect = rest.pop(0)
        assert not ev.cancelled
        assert handles[expect[2]] is ev
    assert not rest


def test_mass_cancellation_compacts_heap():
    """Cancelling most of a large queue rebuilds the heap without the
    corpses; survivors still pop in exact (time, priority, seq) order."""
    q = EventQueue()
    handles = [q.push(float(i), lambda: None) for i in range(500)]
    for i, h in enumerate(handles):
        if i % 5:  # cancel 80%
            h.cancel()
    assert len(q) == 100
    # Bulk compaction kicked in: the heap no longer carries ~400 corpses.
    assert len(q._heap) < 200
    out = []
    while (ev := q.pop()) is not None:
        out.append(ev.time)
    assert out == [float(i) for i in range(0, 500, 5)]
    assert len(q) == 0


def test_compaction_keeps_live_count_exact():
    """Interleaved push/cancel churn across the compaction threshold
    never desynchronizes the O(1) live counter from the heap."""
    q = EventQueue()
    handles = []
    for round_ in range(30):
        handles.extend(q.push(float(round_) + i * 1e-3, lambda: None) for i in range(10))
        for h in handles[::3]:
            h.cancel()
        tracked, actual = q.live_count_check()
        assert tracked == actual == len(q)
    while q.pop() is not None:
        pass
    assert len(q) == 0 and q.live_count_check() == (0, 0)
