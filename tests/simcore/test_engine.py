"""Unit tests for the simulation engine."""

import pytest

from repro.simcore.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_after_schedules_relative():
    sim = Simulator()
    fired = []
    sim.after(1.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.5]
    assert sim.now == 1.5


def test_at_schedules_absolute():
    sim = Simulator()
    fired = []
    sim.at(2.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.0]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.after(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        Simulator().after(-1.0, lambda: None)


def test_run_until_stops_clock_at_horizon():
    sim = Simulator()
    fired = []
    sim.after(1.0, lambda: fired.append(1))
    sim.after(10.0, lambda: fired.append(2))
    end = sim.run(until=5.0)
    assert fired == [1]
    assert end == 5.0
    # the late event survives
    end = sim.run()
    assert fired == [1, 2]
    assert end == 10.0


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    assert sim.run(until=3.0) == 3.0


def test_stop_when_predicate():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.after(float(i + 1), lambda i=i: fired.append(i))
    sim.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_stop_requested_from_event():
    sim = Simulator()
    fired = []
    sim.after(1.0, lambda: (fired.append(1), sim.stop()))
    sim.after(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]


def test_event_exactly_at_horizon_fires():
    """An event at precisely t == until is *inside* the horizon: only
    events strictly beyond it stay queued."""
    sim = Simulator()
    fired = []
    sim.at(5.0, lambda: fired.append("edge"))
    sim.at(5.0 + 1e-9, lambda: fired.append("beyond"))
    end = sim.run(until=5.0)
    assert fired == ["edge"]
    assert end == 5.0
    assert len(sim.queue) == 1  # the beyond-horizon event survives


def test_stop_when_firing_on_final_event_before_horizon_clamp():
    """stop_when triggered by the last in-horizon event: with work still
    queued the clock stays at the stopping event's time; only when that
    event drained the queue does the horizon clamp advance the clock."""
    sim = Simulator()
    fired = []
    sim.at(2.0, lambda: fired.append(1))
    sim.at(20.0, lambda: fired.append(2))  # beyond the horizon, pending
    end = sim.run(until=10.0, stop_when=lambda: len(fired) >= 1)
    assert fired == [1]
    assert end == 2.0  # not clamped: the queue is not drained
    assert sim.now == 2.0


def test_empty_queue_after_final_event_still_clamps_to_horizon():
    """The documented clamp: a drained queue advances the clock to the
    horizon, even when stop_when fired on that final event."""
    sim = Simulator()
    fired = []
    sim.at(2.0, lambda: fired.append(1))
    end = sim.run(until=10.0, stop_when=lambda: len(fired) >= 1)
    assert fired == [1]
    assert end == 10.0


def test_stop_from_inside_callback_with_horizon():
    """stop() requested from inside an event callback halts the loop
    after that event even when later events sit inside the horizon."""
    sim = Simulator()
    fired = []
    sim.at(1.0, lambda: (fired.append(1), sim.stop()))
    sim.at(2.0, lambda: fired.append(2))
    end = sim.run(until=5.0)
    assert fired == [1]
    assert end == 1.0
    # the stopped run left the pending event intact; a fresh run resumes
    end = sim.run(until=5.0)
    assert fired == [1, 2]
    assert end == 5.0


def test_stop_from_callback_skips_same_instant_events():
    """stop() is honoured between events even at an identical timestamp
    (the event being processed completes, nothing else fires)."""
    sim = Simulator()
    fired = []
    sim.at(1.0, lambda: (fired.append("a"), sim.stop()), priority=0)
    sim.at(1.0, lambda: fired.append("b"), priority=1)
    sim.run()
    assert fired == ["a"]
    assert len(sim.queue) == 1


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def cascade(n):
        fired.append(n)
        if n < 5:
            sim.after(1.0, lambda: cascade(n + 1))

    sim.after(0.0, lambda: cascade(0))
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_livelock_guard():
    sim = Simulator(max_events=100)

    def loop():
        sim.after(0.0, loop)

    sim.after(0.0, loop)
    with pytest.raises(SimulationError, match="livelock"):
        sim.run()


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_not_reentrant():
    sim = Simulator()
    err = {}

    def inner():
        try:
            sim.run()
        except SimulationError as exc:
            err["e"] = exc

    sim.after(1.0, inner)
    sim.run()
    assert "e" in err


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.after(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_defer_runs_after_callback_before_stop_when():
    """Deferred work runs at the same instant, after the callback that
    queued it and before the stop predicate is evaluated."""
    sim = Simulator()
    log = []

    def cb():
        sim.defer(lambda: log.append("deferred"))
        log.append("callback")

    sim.after(1.0, cb)
    sim.after(2.0, lambda: log.append("late"))
    sim.run(stop_when=lambda: "deferred" in log)
    # The run stopped at t=1.0: the deferred fn ran before stop_when,
    # and the t=2.0 event never fired.
    assert log == ["callback", "deferred"]
    assert sim.now == 1.0


def test_defer_nested_drains_same_instant():
    """A deferred fn may defer further work; everything drains before
    the clock moves (and before the next event's callback)."""
    sim = Simulator()
    log = []

    def cb():
        sim.defer(lambda: (log.append("d1"), sim.defer(lambda: log.append("d2"))))

    sim.after(1.0, cb)
    sim.after(1.0, lambda: log.append("next-event"))
    sim.run()
    assert log == ["d1", "d2", "next-event"]


def test_defer_drained_in_step_and_oracle_path():
    """Both Simulator.step and the general (until=...) run path drain
    deferred work."""
    sim = Simulator()
    log = []
    sim.after(1.0, lambda: sim.defer(lambda: log.append("a")))
    assert sim.step() is True
    assert log == ["a"]
    sim.after(1.0, lambda: sim.defer(lambda: log.append("b")))
    sim.run(until=10.0)
    assert log == ["a", "b"]
