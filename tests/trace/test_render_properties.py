"""Property-based rendering tests: random timelines must always render
to well-formed Gantt rows and valid .prv records."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.collector import TraceCollector
from repro.trace.gantt import render_timeline
from repro.trace.paraver import export_prv
from repro.trace.records import State, TaskTimeline

STATES = [State.RUNNING, State.READY, State.WAITING]
GLYPHS = set("#-. ")


@st.composite
def timelines(draw):
    """A random well-formed timeline: increasing transition times."""
    n = draw(st.integers(1, 20))
    durations = draw(
        st.lists(
            st.floats(min_value=1e-6, max_value=10.0),
            min_size=n,
            max_size=n,
        )
    )
    tl = TaskTimeline(1, "T")
    t = 0.0
    for d in durations:
        state = draw(st.sampled_from(STATES))
        tl.transition(t, state, cpu=draw(st.integers(0, 3)))
        t += d
    tl.finish(t)
    return tl, t


@settings(max_examples=60, deadline=None)
@given(data=timelines(), width=st.integers(1, 200))
def test_render_row_always_well_formed(data, width):
    tl, end = data
    row = render_timeline(tl, 0.0, end, width)
    assert len(row) == width
    assert set(row) <= GLYPHS


@settings(max_examples=40, deadline=None)
@given(data=timelines())
def test_full_window_has_no_blank_columns(data):
    """Sampling inside the covered span never produces blanks (the
    timeline tiles its lifetime)."""
    tl, end = data
    if end <= 0:
        return
    row = render_timeline(tl, 0.0, end, 50)
    assert " " not in row


class _T:
    is_idle_task = False

    def __init__(self, pid, name):
        self.pid, self.name = pid, name


@settings(max_examples=40, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.integers(1, 4),
            st.sampled_from(["run", "block", "wake", "preempted"]),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_prv_export_well_formed_for_random_event_streams(events):
    trace = TraceCollector()
    tasks = {pid: _T(pid, f"P{pid}") for pid in range(1, 5)}
    for time, pid, kind in sorted(events):
        trace.record(time, tasks[pid], kind, cpu=0)
    end = max(t for t, _, _ in events) + 1.0
    out = export_prv(trace, end)
    lines = out.strip().splitlines()
    assert lines[0].startswith("#Paraver")
    for line in lines[1:]:
        fields = line.split(":")
        assert fields[0] in ("1", "2")
        if fields[0] == "1":  # state record: begin <= end
            assert int(fields[5]) <= int(fields[6])
        assert all(f.lstrip("-").isdigit() for f in fields[1:])
