"""Timeline and interval unit tests."""

import pytest

from repro.trace.records import Interval, State, TaskTimeline


def test_interval_duration():
    iv = Interval(1.0, 3.5, State.RUNNING, cpu=0)
    assert iv.duration == 2.5


def test_transitions_build_intervals():
    tl = TaskTimeline(1, "t")
    tl.transition(0.0, State.READY)
    tl.transition(1.0, State.RUNNING, cpu=0)
    tl.transition(3.0, State.WAITING)
    tl.finish(4.0)
    assert len(tl.intervals) == 3
    assert tl.intervals[0] == Interval(0.0, 1.0, State.READY, None)
    assert tl.intervals[1] == Interval(1.0, 3.0, State.RUNNING, 0)
    assert tl.intervals[2] == Interval(3.0, 4.0, State.WAITING, None)


def test_same_state_transition_coalesced():
    tl = TaskTimeline(1, "t")
    tl.transition(0.0, State.RUNNING, cpu=0)
    tl.transition(1.0, State.RUNNING, cpu=0)
    tl.finish(2.0)
    assert len(tl.intervals) == 1
    assert tl.intervals[0].duration == 2.0


def test_cpu_change_splits_interval():
    tl = TaskTimeline(1, "t")
    tl.transition(0.0, State.RUNNING, cpu=0)
    tl.transition(1.0, State.RUNNING, cpu=2)
    tl.finish(2.0)
    assert len(tl.intervals) == 2
    assert tl.intervals[0].cpu == 0
    assert tl.intervals[1].cpu == 2


def test_zero_length_interval_dropped():
    tl = TaskTimeline(1, "t")
    tl.transition(1.0, State.RUNNING, cpu=0)
    tl.transition(1.0, State.WAITING)
    tl.finish(2.0)
    assert len(tl.intervals) == 1
    assert tl.intervals[0].state == State.WAITING


def test_time_in_with_window():
    tl = TaskTimeline(1, "t")
    tl.transition(0.0, State.RUNNING, cpu=0)
    tl.transition(4.0, State.WAITING)
    tl.finish(6.0)
    assert tl.time_in(State.RUNNING) == 4.0
    assert tl.time_in(State.RUNNING, start=1.0, end=3.0) == 2.0
    assert tl.time_in(State.WAITING, start=0.0, end=5.0) == 1.0
    assert tl.time_in(State.READY) == 0.0


def test_span():
    tl = TaskTimeline(1, "t")
    assert tl.span == 0.0
    tl.transition(1.0, State.RUNNING, cpu=0)
    tl.transition(3.0, State.WAITING)
    tl.finish(5.0)
    assert tl.span == 4.0


def test_finish_idempotent_state():
    tl = TaskTimeline(1, "t")
    tl.transition(0.0, State.RUNNING, cpu=0)
    tl.finish(1.0)
    n = len(tl.intervals)
    tl.finish(1.0)
    assert len(tl.intervals) == n
