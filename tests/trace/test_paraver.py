"""PARAVER export tests."""

import pytest

from repro.trace.collector import TraceCollector
from repro.trace.paraver import (
    EVT_HW_PRIORITY,
    STATE_CODE,
    export_names,
    export_prv,
)
from repro.trace.records import State


class T:
    def __init__(self, pid, name):
        self.pid, self.name = pid, name
        self.is_idle_task = False


@pytest.fixture
def trace():
    tr = TraceCollector()
    a = T(1, "P1")
    tr.record(0.0, a, "run", cpu=0)
    tr.record(0.5, a, "hw_priority", priority=6)
    tr.record(1.0, a, "block", reason="mpi", wait=True)
    tr.record(2.0, a, "wake", cpu=0)
    return tr


def test_header_structure(trace):
    out = export_prv(trace, end_time=2.0)
    header = out.splitlines()[0]
    assert header.startswith("#Paraver")
    assert "2000000000_ns" in header  # 2 s in ns


def test_state_records_present(trace):
    out = export_prv(trace, end_time=2.0)
    state_lines = [l for l in out.splitlines() if l.startswith("1:")]
    assert len(state_lines) >= 2
    # running interval: state code 1, cpu0 -> field 2 is '1'
    assert any(l.endswith(f":{STATE_CODE[State.RUNNING]}") for l in state_lines)
    assert any(l.endswith(f":{STATE_CODE[State.WAITING]}") for l in state_lines)


def test_priority_event_exported(trace):
    out = export_prv(trace, end_time=2.0)
    ev_lines = [l for l in out.splitlines() if l.startswith("2:")]
    assert any(f":{EVT_HW_PRIORITY}:6" in l for l in ev_lines)


def test_records_sorted_by_time(trace):
    out = export_prv(trace, end_time=2.0)
    times = []
    for line in out.splitlines()[1:]:
        parts = line.split(":")
        times.append(int(parts[5]))
    assert times == sorted(times)


def test_export_names(trace):
    assert export_names(trace) == {1: "P1"}


def test_empty_trace_exports_header_only():
    out = export_prv(TraceCollector(), end_time=1.0)
    assert out.splitlines()[0].startswith("#Paraver")
    assert len(out.strip().splitlines()) == 1
