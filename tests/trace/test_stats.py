"""%Comp / utilization / imbalance statistics tests."""

import pytest

from repro.trace.records import State, TaskTimeline
from repro.trace.stats import (
    TaskStats,
    imbalance_factor,
    imbalance_spread,
    utilization,
)


def make_stats(running, ready, waiting):
    return TaskStats(
        pid=1, name="t", running=running, ready=ready, waiting=waiting,
        span=running + ready + waiting,
    )


def test_pct_comp_is_application_view():
    """%Comp counts RUNNING + READY (PARAVER can't see descheduling)."""
    s = make_stats(running=6.0, ready=2.0, waiting=2.0)
    assert s.pct_comp == pytest.approx(80.0)
    assert s.pct_running == pytest.approx(60.0)
    assert s.utilization == pytest.approx(0.8)


def test_zero_span_safe():
    s = make_stats(0, 0, 0)
    assert s.pct_comp == 0.0
    assert s.pct_running == 0.0
    assert s.utilization == 0.0


def test_utilization_of_timeline_window():
    tl = TaskTimeline(1, "t")
    tl.transition(0.0, State.RUNNING, cpu=0)
    tl.transition(2.0, State.WAITING)
    tl.finish(4.0)
    assert utilization(tl) == pytest.approx(0.5)
    assert utilization(tl, start=0.0, end=2.0) == pytest.approx(1.0)
    assert utilization(tl, start=2.0, end=4.0) == pytest.approx(0.0)


def test_imbalance_spread():
    stats = [make_stats(9.0, 0, 1.0), make_stats(2.0, 0, 8.0)]
    assert imbalance_spread(stats) == pytest.approx(70.0)
    assert imbalance_spread([]) == 0.0


def test_imbalance_factor():
    stats = [make_stats(4.0, 0, 0), make_stats(2.0, 0, 0)]
    assert imbalance_factor(stats) == pytest.approx(4.0 / 3.0)
    assert imbalance_factor([]) == 1.0
    assert imbalance_factor([make_stats(0, 0, 0)]) == 1.0
