"""ASCII Gantt rendering tests."""

import pytest

from repro.trace.collector import TraceCollector
from repro.trace.gantt import render_gantt, render_timeline, _name_key
from repro.trace.records import State, TaskTimeline


def make_timeline():
    tl = TaskTimeline(1, "P1")
    tl.transition(0.0, State.RUNNING, cpu=0)
    tl.transition(5.0, State.WAITING)
    tl.finish(10.0)
    return tl


def test_render_timeline_glyphs():
    tl = make_timeline()
    row = render_timeline(tl, 0.0, 10.0, width=10)
    assert row == "#####....."


def test_render_timeline_ready_glyph():
    tl = TaskTimeline(1, "t")
    tl.transition(0.0, State.READY)
    tl.finish(1.0)
    assert render_timeline(tl, 0.0, 1.0, width=4) == "----"


def test_render_timeline_outside_span_blank():
    tl = make_timeline()
    row = render_timeline(tl, 0.0, 20.0, width=20)
    assert row.endswith(" " * 10)


def test_render_timeline_degenerate_window():
    assert render_timeline(make_timeline(), 5.0, 5.0, width=10) == ""


def test_render_gantt_full():
    trace = TraceCollector()

    class T:
        def __init__(self, pid, name):
            self.pid, self.name = pid, name
            self.is_idle_task = False

    a, b = T(1, "P1"), T(2, "P2")
    trace.record(0.0, a, "run", cpu=0)
    trace.record(1.0, a, "block", reason="x", wait=True)
    trace.record(0.0, b, "run", cpu=1)
    out = render_gantt(trace, 2.0, width=10)
    lines = out.splitlines()
    assert any(line.startswith("P1") for line in lines)
    assert any(line.startswith("P2") for line in lines)
    assert "legend" in lines[-1]


def test_render_gantt_respects_name_filter():
    trace = TraceCollector()

    class T:
        def __init__(self, pid, name):
            self.pid, self.name = pid, name
            self.is_idle_task = False

    trace.record(0.0, T(1, "P1"), "run", cpu=0)
    trace.record(0.0, T(2, "P2"), "run", cpu=1)
    out = render_gantt(trace, 1.0, width=10, names=["P2"])
    assert "P2" in out and "P1 " not in out


def test_natural_name_sort():
    names = ["P10", "P2", "P1", "master"]
    assert sorted(names, key=_name_key) == ["P1", "P2", "P10", "master"]
