"""CSV / bundle export tests."""

import csv
import io
import os

import pytest

from repro.experiments.metbench import run_one
from repro.trace.export import (
    intervals_csv,
    priority_changes_csv,
    stats_csv,
    write_bundle,
)


@pytest.fixture(scope="module")
def result():
    return run_one("uniform", iterations=3, keep_trace=True)


def _rows(text):
    return list(csv.reader(io.StringIO(text)))


def test_intervals_csv(result):
    rows = _rows(intervals_csv(result.trace, result.exec_time))
    assert rows[0] == ["pid", "name", "state", "start", "end", "cpu"]
    assert len(rows) > 10
    # intervals are well-formed: end >= start
    for _pid, _name, _state, start, end, _cpu in rows[1:]:
        assert float(end) >= float(start)


def test_stats_csv_matches_result(result):
    rows = _rows(stats_csv(result.trace, result.exec_time))
    by_name = {r[1]: r for r in rows[1:]}
    assert float(by_name["P1"][6]) == pytest.approx(
        result.tasks["P1"].pct_comp, abs=0.01
    )


def test_priority_changes_csv(result):
    rows = _rows(priority_changes_csv(result.trace))
    assert rows[0] == ["time", "pid", "name", "priority"]
    names = {r[2] for r in rows[1:]}
    assert names == {"P2", "P4"}


def test_write_bundle(result, tmp_path):
    paths = write_bundle(result, str(tmp_path))
    assert len(paths) == 5
    for p in paths:
        assert os.path.exists(p)
        assert os.path.getsize(p) > 0
    exts = {os.path.splitext(p)[1] for p in paths}
    assert exts == {".prv", ".csv", ".txt"}


def test_write_bundle_requires_trace(tmp_path):
    res = run_one("cfs", iterations=1, keep_trace=False)
    with pytest.raises(ValueError, match="keep_trace"):
        write_bundle(res, str(tmp_path))


def test_cli_export(tmp_path, capsys):
    from repro.cli import main

    rc = main(
        ["export", "metbench", "uniform", "--out", str(tmp_path),
         "--iterations", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "exec time" in out
    assert len(list(tmp_path.iterdir())) == 5
