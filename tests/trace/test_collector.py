"""Trace-collector tests against the live kernel."""

import pytest

from repro.kernel import Compute, Sleep
from repro.trace.records import State
from repro.trace.stats import compute_stats
from tests.conftest import compute_sleep_program


def test_collector_builds_timelines(kernel, make_compute_task):
    t = make_compute_task("w", iterations=2, work=0.05, pause=0.02, cpu=0)
    end = kernel.run()
    trace = kernel.trace
    trace.finish(end)
    tl = trace.timeline(t.pid)
    states = [iv.state for iv in tl.intervals]
    assert State.RUNNING in states
    assert State.WAITING in states


def test_idle_tasks_not_traced(kernel, make_compute_task):
    make_compute_task("w", cpu=0)
    kernel.run()
    names = {tl.name for tl in kernel.trace.timelines.values()}
    assert not any(n.startswith("swapper") for n in names)


def test_by_name_lookup(kernel, make_compute_task):
    make_compute_task("alpha", cpu=0)
    kernel.run()
    assert kernel.trace.by_name("alpha").name == "alpha"
    with pytest.raises(KeyError):
        kernel.trace.by_name("missing")


def test_events_of_kind(kernel, make_compute_task):
    make_compute_task("w", iterations=3, cpu=0)
    kernel.run()
    blocks = kernel.trace.events_of_kind("block")
    assert len(blocks) == 3
    assert all(ev.kind == "block" for ev in blocks)


def test_priority_change_events(kernel, make_compute_task):
    t = make_compute_task("w", iterations=1, work=0.5, cpu=0)
    kernel.sim.run(until=0.01)
    kernel.set_hw_priority(t, 6)
    kernel.run()
    changes = kernel.trace.priority_changes(t.pid)
    assert len(changes) == 1
    assert changes[0].info["priority"] == 6


def test_keep_events_false_skips_event_log(quiet_kernel):
    from repro.trace.collector import TraceCollector

    collector = TraceCollector(keep_events=False)
    quiet_kernel.trace = collector
    quiet_kernel.spawn("w", compute_sleep_program(2, 0.01, 0.01), cpu=0)
    end = quiet_kernel.run()
    assert collector.events == []
    collector.finish(end)
    assert collector.timelines  # timelines still built


def test_state_accounting_sums_to_span(kernel, make_compute_task):
    make_compute_task("w", iterations=3, work=0.05, pause=0.03, cpu=0)
    end = kernel.run()
    stats = compute_stats(kernel.trace, end, names=["w"])
    s = stats["w"]
    assert s.running + s.ready + s.waiting == pytest.approx(s.span)
    assert s.running > 0 and s.waiting > 0
