"""Simulator performance: wall cost of the simulation itself.

Not a paper artifact — a guard against performance regressions in the
engine.  Measures (a) raw event throughput through a single
self-rescheduling chain, (b) throughput with a deep heap (512 staggered
chains, the shape of a real kernel's event queue), and (c) the full
MetBench experiment, asserting the NOHZ/fluid-rate design keeps the
event count per simulated second low.

The storm workloads live in :mod:`repro.bench.scenarios` and are shared
with the ``repro bench`` harness, so the numbers recorded in
``BENCH_<label>.json`` measure exactly the code benchmarked here.
"""

from repro.bench.scenarios import event_storm_chain, event_storm_deep
from repro.experiments.common import run_experiment
from repro.workloads.metbench import MetBench


def test_event_throughput(benchmark):
    processed = benchmark.pedantic(
        event_storm_chain, rounds=1, iterations=1
    )
    assert processed == 200_000


def test_event_throughput_deep_heap(benchmark):
    processed = benchmark.pedantic(
        event_storm_deep, rounds=1, iterations=1
    )
    # 512 chains x (200_000 // 512) hops each
    assert processed == 512 * (200_000 // 512)


def test_metbench_simulation_cost(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(MetBench(), "uniform", keep_trace=False),
        rounds=1,
        iterations=1,
    )
    # 73 simulated seconds; the event-driven design must stay well under
    # 100k events (vs ~290k 1ms ticks a full-tick kernel would burn)
    assert result.exec_time > 70.0
