"""Simulator performance: wall cost of the simulation itself.

Not a paper artifact — a guard against performance regressions in the
engine.  Measures (a) raw event throughput and (b) the full MetBench
experiment, and asserts the NOHZ/fluid-rate design keeps the event
count per simulated second low.
"""

from repro.experiments.common import run_experiment
from repro.simcore.engine import Simulator
from repro.workloads.metbench import MetBench


def _event_storm(n: int = 200_000) -> int:
    sim = Simulator()

    def chain(i=0):
        if i < n:
            sim.after(1e-6, lambda: chain(i + 1))

    chain()
    sim.run()
    return sim.events_processed


def test_event_throughput(benchmark):
    processed = benchmark.pedantic(
        _event_storm, rounds=1, iterations=1
    )
    assert processed == 200_000


def test_metbench_simulation_cost(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(MetBench(), "uniform", keep_trace=False),
        rounds=1,
        iterations=1,
    )
    # 73 simulated seconds; the event-driven design must stay well under
    # 100k events (vs ~290k 1ms ticks a full-tick kernel would burn)
    assert result.exec_time > 70.0
