"""Figure 3: MetBench traces under the four schedulers.

The paper's PARAVER screenshots become ASCII Gantt charts; the shape
assertions check the visual claims: baseline small-load workers are
mostly waiting (dots), the balanced runs are mostly computing (#).
"""

from repro.experiments.figures import figure3


def _density(gantt: str, row_prefix: str, glyph: str) -> float:
    for line in gantt.splitlines():
        if line.startswith(row_prefix):
            body = line[len(row_prefix):].strip()
            if not body:
                return 0.0
            return body.count(glyph) / len(body)
    raise AssertionError(f"row {row_prefix!r} not found")


def test_fig3_metbench_traces(bench_once):
    out = bench_once(figure3, iterations=12)
    for sched, entry in out.items():
        print(f"\n== Fig 3 {sched} (exec {entry['exec_time']:.2f}s) ==")
        print(entry["gantt"])

    # (a) baseline: small-load workers (P1) mostly wait
    assert _density(out["cfs"]["gantt"], "P1", ".") > 0.5
    assert _density(out["cfs"]["gantt"], "P2", "#") > 0.9
    # (b,c,d) balanced: P1 computes nearly all the time
    for sched in ("static", "uniform", "adaptive"):
        assert _density(out[sched]["gantt"], "P1", "#") > 0.85, sched
