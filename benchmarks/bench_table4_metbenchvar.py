"""Table IV: MetBenchVar, full size (k=15, 3 periods, ~368 simulated s).

Shape assertions: baseline ~368 s with the 50/75 mixed utilizations;
static recovers only part of the gain (reversed in period 2); the
dynamic heuristics beat static and re-balance after each reversal.
"""

import pytest

from repro.analysis.tables import format_characterization_table, format_comparison
from repro.experiments.metbenchvar import PAPER_COMP, PAPER_EXEC, run_table4


def _run():
    return run_table4(keep_trace=False)


def test_table4_metbenchvar(bench_once):
    results = bench_once(_run)
    print()
    print(
        format_characterization_table(
            list(results.values()), "Table IV (MetBenchVar, k=15)"
        )
    )
    print()
    print(format_comparison(results, PAPER_EXEC, PAPER_COMP, "vs. paper:"))

    base = results["cfs"]
    assert base.exec_time == pytest.approx(PAPER_EXEC["cfs"], rel=0.02)
    assert base.tasks["P1"].pct_comp == pytest.approx(50.2, abs=3.0)
    assert base.tasks["P2"].pct_comp == pytest.approx(75.1, abs=3.0)

    static = results["static"]
    uniform = results["uniform"]
    adaptive = results["adaptive"]
    assert static.improvement_over(base) > 5.0
    # the dynamic schedulers must beat the statically-reversed period 2
    assert uniform.exec_time < static.exec_time
    assert adaptive.exec_time < static.exec_time
    for sched, res in (("uniform", uniform), ("adaptive", adaptive)):
        gain = res.improvement_over(base)
        assert 8.0 < gain < 14.0, f"{sched} gain {gain:.1f}%"
        assert res.exec_time == pytest.approx(PAPER_EXEC[sched], rel=0.05)
        # re-balancing happened after each of the two reversals
        assert res.priority_changes >= 6
