"""Ablation: nice() versus hardware priorities on MetBench.

nice redistributes CPU *time* among runqueue peers; with one MPI rank
per logical CPU there is nothing to redistribute — the imbalance sits
between the two SMT contexts of a core, which only the POWER5 hardware
priority can bias.  The paper's core insight in one table.
"""

import pytest

from repro.experiments.nice_ablation import run_ablation_nice


def test_ablation_nice_vs_hardware_priorities(bench_once):
    out = bench_once(run_ablation_nice, iterations=20)
    base = out["cfs"]
    print()
    print(f"{'config':<22}{'exec':>9}{'gain':>8}")
    for key, res in out.items():
        label = {
            "cfs": "CFS baseline",
            "nice": f"CFS + nice(-15) big",
            "uniform": "HPCSched (hw prio)",
        }[key]
        print(f"{label:<22}{res.exec_time:>8.2f}s"
              f"{res.improvement_over(base):>7.1f}%")

    # nice is a strict no-op: one rank per CPU, nothing shares a runqueue
    assert out["nice"].exec_time == pytest.approx(base.exec_time, rel=1e-6)
    # hardware prioritization is not
    assert out["uniform"].improvement_over(base) > 9.0
