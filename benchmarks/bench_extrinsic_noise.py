"""Extension bench: extrinsic imbalance (OS noise on one CPU).

Balanced MetBench + a heavy daemon on CPU 0: the §I extrinsic-imbalance
scenario.  HPCSched's class ordering keeps the daemon off the critical
path; the detector's unanimous priority raise is a hardware no-op,
isolating the policy effect that also drives the SIESTA result.
"""

import pytest

from repro.experiments.extrinsic import run_extrinsic


def test_extrinsic_noise_shielding(bench_once):
    out = bench_once(run_extrinsic, iterations=20)
    print()
    base = out["cfs"]
    print(f"{'scheduler':<10}{'exec':>9}{'gain':>8}  %comp per rank")
    for sched, res in out.items():
        comps = " ".join(
            f"{res.tasks[n].pct_comp:5.1f}" for n in sorted(res.tasks)
        )
        gain = res.improvement_over(base)
        print(f"{sched:<10}{res.exec_time:>8.2f}s{gain:>7.1f}%  {comps}")

    assert base.tasks["P2"].pct_comp < 95.0  # noise-induced waiting
    for sched in ("uniform", "adaptive"):
        assert out[sched].improvement_over(base) > 5.0
        comps = [out[sched].tasks[n].pct_comp for n in out[sched].tasks]
        assert min(comps) > 99.0
