"""Ablation: performance-model choice — mechanism strength matters.

The experiments use the calibrated :class:`TableDrivenModel` (backed by
the paper's measured numbers: +2 priority ≈ 95% of the ST-mode
speedup).  Swapping in the analytic :class:`DecodeShareModel` (Amdahl
split on the decode share only) weakens the mechanism: +2 now buys just
~1.69x while ST mode still buys 2.1x — and balancing *loses* to simply
letting the fast worker sprint alone in ST mode after its sibling
blocks.

That sign flip is the point of this ablation: whether priority-based
balancing wins depends on the prioritized-SMT speedup approaching the
ST-mode speedup, which the POWER5's measured behaviour (and hence the
calibrated table) satisfies but a pure decode-share argument does not.
The detector itself behaves identically under both models (same two
decisions, balance reached).
"""

import pytest

from repro.experiments.common import run_experiment
from repro.power5.perfmodel import DecodeShareModel, TableDrivenModel
from repro.workloads.metbench import MetBench


def _run():
    out = {}
    for model_name, model_cls in (
        ("table", TableDrivenModel),
        ("decode-share", DecodeShareModel),
    ):
        for sched in ("cfs", "uniform"):
            out[(model_name, sched)] = run_experiment(
                MetBench(iterations=20),
                sched,
                perf_model=model_cls(),
                keep_trace=False,
            )
    return out


def test_ablation_perfmodel(bench_once):
    out = bench_once(_run)
    print()
    print(f"{'model':<14}{'cfs':>9}{'uniform':>10}{'gain':>8}")
    gains = {}
    for model in ("table", "decode-share"):
        base = out[(model, "cfs")]
        uni = out[(model, "uniform")]
        gains[model] = uni.improvement_over(base)
        print(f"{model:<14}{base.exec_time:>8.2f}s{uni.exec_time:>9.2f}s"
              f"{gains[model]:>7.1f}%")

    for model in ("table", "decode-share"):
        base = out[(model, "cfs")]
        uni = out[(model, "uniform")]
        # the scheduler behaves identically: same decisions, utils rise
        assert uni.priority_changes == 2, model
        assert base.tasks["P1"].pct_comp < 40, model
        assert uni.tasks["P1"].pct_comp > base.tasks["P1"].pct_comp + 20, model

    # the calibrated mechanism wins; the weak analytic one loses to the
    # ST-mode sprint — the sign flip this ablation demonstrates
    assert gains["table"] > 9.0
    assert gains["decode-share"] < gains["table"]
    assert gains["decode-share"] < 0.0
