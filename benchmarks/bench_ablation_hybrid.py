"""Extension bench: the Hybrid heuristic (paper §VI future work).

"We would like to find an heuristic capable of performing well (even
if not optimal) for both constant and dynamic applications."  The
Hybrid heuristic (agreement-gated fast path + median damping) is this
repository's answer; this bench races it against Uniform and Adaptive
on all four workloads.
"""

import pytest

from repro.experiments import btmz, metbench, metbenchvar, siesta


def _run_matrix():
    out = {}
    cases = {
        "metbench": (metbench.run_one, {}),
        "metbenchvar": (metbenchvar.run_one, {}),
        "btmz": (btmz.run_one, {"iterations": 60}),
        "siesta": (siesta.run_one, {"scf_steps": 8}),
    }
    for wl, (runner, kwargs) in cases.items():
        base = runner("cfs", keep_trace=False, **kwargs)
        out[wl] = {"cfs": base}
        for sched in ("uniform", "adaptive", "hybrid"):
            out[wl][sched] = runner(sched, keep_trace=False, **kwargs)
    return out


def test_hybrid_across_all_workloads(bench_once):
    out = bench_once(_run_matrix)
    print()
    print(f"{'workload':<13}{'uniform':>10}{'adaptive':>10}{'hybrid':>10}")
    for wl, res in out.items():
        base = res["cfs"]
        gains = {
            s: res[s].improvement_over(base)
            for s in ("uniform", "adaptive", "hybrid")
        }
        print(
            f"{wl:<13}{gains['uniform']:>9.1f}%{gains['adaptive']:>9.1f}%"
            f"{gains['hybrid']:>9.1f}%"
        )

    for wl, res in out.items():
        base = res["cfs"]
        hybrid_gain = res["hybrid"].improvement_over(base)
        best_paper = max(
            res["uniform"].improvement_over(base),
            res["adaptive"].improvement_over(base),
        )
        # "well, even if not optimal": within 2.5 points of the best
        # paper heuristic on every workload class
        assert hybrid_gain > best_paper - 2.5, wl
        assert hybrid_gain > 0, wl
