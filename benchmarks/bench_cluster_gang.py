"""Extension bench: cluster-level gang scheduling (paper §VI).

Full-size version of the future-work experiment: an 8-rank ladder
application on a 2-node cluster under the four combinations of
placement strategy x local HPCSched.  Asserts the composition story:
gang placement fixes the inter-node/heavy-heavy imbalance the local
scheduler cannot touch, and the local HPCSched then absorbs each core
pair's remaining ~7x imbalance.
"""

import pytest

from repro.cluster.experiment import run_cluster


def _run_matrix():
    return {
        (strategy, hpc): run_cluster(strategy, iterations=10, use_hpc=hpc)
        for strategy in ("block", "gang")
        for hpc in (False, True)
    }


def test_cluster_gang_scheduling(bench_once):
    out = bench_once(_run_matrix)
    print()
    print(f"{'placement':<10}{'HPCSched':>10}{'exec':>10}{'node loads':>22}")
    for (strategy, hpc), res in out.items():
        loads = "/".join(f"{v:.1f}" for _, v in sorted(res.node_loads.items()))
        print(f"{strategy:<10}{str(hpc):>10}{res.exec_time:>9.2f}s{loads:>22}")

    block_plain = out[("block", False)].exec_time
    block_hpc = out[("block", True)].exec_time
    gang_plain = out[("gang", False)].exec_time
    gang_hpc = out[("gang", True)].exec_time

    assert gang_plain < 0.7 * block_plain
    assert block_hpc == pytest.approx(block_plain, rel=0.02)
    assert gang_hpc < gang_plain
    assert gang_hpc < 0.55 * block_plain
