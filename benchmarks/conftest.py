"""Benchmark harness configuration.

Every paper table/figure has one benchmark module.  Full-size runs are
simulated once per benchmark (``rounds=1``) — pytest-benchmark then
reports the *simulator's* wall cost while the assertions inside each
benchmark check the *simulated* results against the paper's numbers.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """benchmark.pedantic with a single round (experiments are
    deterministic; repeating them only re-measures the same numbers)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
