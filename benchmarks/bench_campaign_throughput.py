"""Campaign throughput: ``--jobs N`` speedup + warm-cache re-run cost.

A fixed 8-run matrix (BT-MZ at eight iteration counts) is executed
three ways:

1. serial (``jobs=1``),
2. parallel (``jobs=4``) with a fresh cache,
3. parallel again against the now-warm cache.

The parallel pass must beat serial wall-clock, the warm pass must be
near-zero (every run answered from the content-addressed cache), and
all three must produce byte-identical payloads.
"""

import os
import time

from repro.campaign import CampaignExecutor, CampaignStore, ResultCache, expand_matrix


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1

#: Eight genuinely distinct BT-MZ runs, heavy enough (~0.3-1.2s each)
#: that worker dispatch overhead is noise against the simulation cost.
MATRIX = expand_matrix(
    "bench-throughput",
    ["table5"],
    grid={"iterations": [120, 160, 200, 240, 280, 320, 360, 400]},
)


def _executor(tmp_path, tag, jobs, cache_dir=None):
    return CampaignExecutor(
        jobs=jobs,
        cache=ResultCache(cache_dir or tmp_path / tag / "cache"),
        store=CampaignStore(tmp_path / tag / "store"),
        verify=0,
    )


def test_campaign_parallel_speedup_and_warm_cache(bench_once, tmp_path):
    assert len(MATRIX.runs) == 8

    t0 = time.perf_counter()
    serial = _executor(tmp_path, "serial", jobs=1).run(MATRIX)
    t_serial = time.perf_counter() - t0
    assert len(serial.ok) == 8

    shared_cache = tmp_path / "parallel" / "cache"
    t0 = time.perf_counter()
    parallel = bench_once(
        _executor(tmp_path, "parallel", jobs=4, cache_dir=shared_cache).run,
        MATRIX,
    )
    t_parallel = time.perf_counter() - t0
    assert len(parallel.ok) == 8

    t0 = time.perf_counter()
    warm = _executor(tmp_path, "warm", jobs=4, cache_dir=shared_cache).run(MATRIX)
    t_warm = time.perf_counter() - t0

    cpus = _usable_cpus()
    print(
        f"\nserial {t_serial:.2f}s | parallel(4) {t_parallel:.2f}s "
        f"(speedup {t_serial / t_parallel:.2f}x on {cpus} CPUs) | "
        f"warm cache {t_warm:.3f}s (hit ratio {warm.cache_hit_ratio:.0%})"
    )

    # determinism across all three execution modes
    assert serial.payloads == parallel.payloads == warm.payloads

    assert warm.cache_hit_ratio == 1.0
    if cpus >= 4:
        assert t_parallel < t_serial, "4 workers should beat serial"
    assert t_warm < t_serial / 3, "warm-cache re-run should be near-zero"
