"""Figure 5: BT-MZ traces (a representative window of iterations)."""

from repro.experiments.figures import figure5


def _density(gantt: str, row_prefix: str, glyph: str) -> float:
    for line in gantt.splitlines():
        if line.startswith(row_prefix):
            body = line[3:]
            return body.count(glyph) / max(1, len(body.rstrip()))
    raise AssertionError(row_prefix)


def test_fig5_btmz_traces(bench_once):
    out = bench_once(figure5, iterations=40)
    for sched, entry in out.items():
        print(f"\n== Fig 5 {sched} (exec {entry['exec_time']:.2f}s) ==")
        print(entry["gantt"])

    # baseline: light ranks mostly wait, P4 never does
    assert _density(out["cfs"]["gantt"], "P1", ".") > 0.5
    assert _density(out["cfs"]["gantt"], "P4", "#") > 0.95
    # balanced runs: everyone's compute density rises, P4 still saturated
    for sched in ("static", "uniform", "adaptive"):
        assert _density(out[sched]["gantt"], "P1", "#") > _density(
            out["cfs"]["gantt"], "P1", "#"
        ), sched
        assert _density(out[sched]["gantt"], "P4", "#") > 0.95, sched
