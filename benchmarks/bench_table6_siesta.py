"""Table VI: SIESTA (benzene), full size (~81 simulated s, with the OS
noise daemons that make the latency effect visible).

Shape assertions: ~6% execution-time gain for both heuristics while the
per-rank utilizations barely move — the gain is scheduling latency, not
balance (paper §V-D) — and the HPC class collapses wakeup latency.
"""

import pytest

from repro.analysis.tables import format_characterization_table, format_comparison
from repro.experiments.siesta import PAPER_COMP, PAPER_EXEC, run_table6


def _run():
    return run_table6(keep_trace=False)


def test_table6_siesta(bench_once):
    results = bench_once(_run)
    print()
    print(format_characterization_table(list(results.values()), "Table VI (SIESTA)"))
    print()
    print(format_comparison(results, PAPER_EXEC, PAPER_COMP, "vs. paper:"))

    base = results["cfs"]
    assert base.exec_time == pytest.approx(PAPER_EXEC["cfs"], rel=0.03)
    assert base.tasks["P1"].pct_comp == pytest.approx(98.9, abs=1.5)
    assert base.tasks["P4"].pct_comp == pytest.approx(20.0, abs=4.0)

    for sched in ("uniform", "adaptive"):
        res = results[sched]
        gain = res.improvement_over(base)
        assert 4.0 < gain < 8.0, f"{sched} gain {gain:.1f}%"
        assert res.exec_time == pytest.approx(PAPER_EXEC[sched], rel=0.05)
        # balance barely moves: every rank within a few points of baseline
        for name, tr in res.tasks.items():
            assert tr.pct_comp == pytest.approx(
                base.tasks[name].pct_comp, abs=4.0
            ), name
        # latency is the mechanism
        assert res.mean_wakeup_latency < base.mean_wakeup_latency
