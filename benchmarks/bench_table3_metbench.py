"""Table III: MetBench, full size (45 iterations, ~82 simulated s).

Prints the paper-layout table plus measured-vs-paper deltas and asserts
the reproduction bands: baseline ~81.8 s with the 25/100 utilization
split; static/Uniform/Adaptive ~11-13% faster with all workers >90%.
"""

import pytest

from repro.analysis.tables import format_characterization_table, format_comparison
from repro.experiments.metbench import PAPER_COMP, PAPER_EXEC, run_table3


def _run():
    return run_table3(keep_trace=False)


def test_table3_metbench(bench_once):
    results = bench_once(_run)
    print()
    print(format_characterization_table(list(results.values()), "Table III (MetBench)"))
    print()
    print(format_comparison(results, PAPER_EXEC, PAPER_COMP, "vs. paper:"))

    base = results["cfs"]
    # Baseline matches the paper closely (the model was calibrated here).
    assert base.exec_time == pytest.approx(PAPER_EXEC["cfs"], rel=0.02)
    assert base.tasks["P1"].pct_comp == pytest.approx(25.34, abs=2.0)
    assert base.tasks["P2"].pct_comp > 99.0

    for sched in ("static", "uniform", "adaptive"):
        res = results[sched]
        gain = res.improvement_over(base)
        assert 9.0 < gain < 15.0, f"{sched} gain {gain:.1f}%"
        assert res.exec_time == pytest.approx(PAPER_EXEC[sched], rel=0.05)

    # dynamic balancing lifts every worker's utilization above 90%
    for name, tr in results["uniform"].tasks.items():
        assert tr.pct_comp > 90.0, name
    # and needed exactly one decision per boosted worker
    assert results["uniform"].priority_changes == 2
