"""Table I / II: decode-slot arithmetic and privilege rules.

Regenerates both tables from the POWER5 model and checks exactness —
these are the only experiments expected to match the paper bit-for-bit.
"""

from repro.experiments.table1 import run_table1


def test_table1_decode(bench_once):
    out = bench_once(run_table1)
    print()
    print(out["rendered"])
    assert out["table1_exact"], "Table I mismatch"
    assert out["table2_exact"], "Table II mismatch"
