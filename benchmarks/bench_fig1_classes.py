"""Figure 1: scheduling-class diagrams of both kernels."""

from repro.experiments.figures import figure1


def test_fig1_scheduling_classes(bench_once):
    out = bench_once(figure1)
    print()
    print(out["standard"])
    print(out["hpcsched"])
    assert out["order_standard"] == ["rt", "fair", "idle"]
    assert out["order_hpcsched"] == ["rt", "hpc", "fair", "idle"]
