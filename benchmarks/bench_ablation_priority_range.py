"""Ablation: the [MIN_PRIO, MAX_PRIO] window (why the paper caps +-2).

Sweeps the window HPCSched may use on MetBench.  The paper's [4, 6]
wins in both directions:

* the narrower [4, 5] cannot fully balance (+-1 buys too little), and
* wider windows ([3, 6], [2, 6]) actively *hurt*: the heuristic drops
  the light tasks to the bottom, their slowdown explodes (the paper's
  "order of magnitude" asymmetry) and they overshoot into becoming the
  new stragglers — which is exactly why §IV-B limits the range so that
  "the lower priority task's performance does not decrease too much".
"""

from repro.experiments.ablations import ablation_priority_range


def test_ablation_priority_range(bench_once):
    out = bench_once(
        ablation_priority_range,
        ranges=((4, 5), (4, 6), (3, 6), (2, 6)),
        iterations=20,
    )
    base = out["cfs"].exec_time
    print()
    print(f"{'range':<8}{'exec':>9}{'gain':>8}")
    for key, res in out.items():
        if key == "cfs":
            continue
        print(f"{key:<8}{res.exec_time:>8.2f}s{res.improvement_over(out['cfs']):>7.1f}%")
    print(f"cfs     {base:>8.2f}s")

    assert out["[4,6]"].exec_time < base
    # the paper's window beats the narrower one...
    assert out["[4,6]"].exec_time <= out["[4,5]"].exec_time * 1.001
    # ...and the wider ones, where deep de-prioritization backfires
    assert out["[4,6]"].exec_time <= out["[3,6]"].exec_time * 1.001
    assert out["[4,6]"].exec_time <= out["[2,6]"].exec_time * 1.001
