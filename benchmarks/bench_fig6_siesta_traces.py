"""Figure 6: SIESTA traces — very short phases, heavy messaging.

The visual claim: the trace barely changes between the standard and the
HPCSched runs (the imbalance is intrinsic and unfixable by priorities);
only the execution time shrinks.
"""

from repro.experiments.figures import figure6


def _density(gantt: str, row_prefix: str, glyph: str) -> float:
    for line in gantt.splitlines():
        if line.startswith(row_prefix):
            body = line[3:]
            return body.count(glyph) / max(1, len(body.rstrip()))
    raise AssertionError(row_prefix)


def test_fig6_siesta_traces(bench_once):
    out = bench_once(figure6, scf_steps=4)
    for sched, entry in out.items():
        print(f"\n== Fig 6 {sched} (exec {entry['exec_time']:.2f}s) ==")
        print(entry["gantt"])

    for sched in ("uniform", "adaptive"):
        # the utilization picture is unchanged within a few points
        for row in ("P1", "P2", "P3", "P4"):
            assert abs(
                _density(out[sched]["gantt"], row, "#")
                - _density(out["cfs"]["gantt"], row, "#")
            ) < 0.10, (sched, row)
        # but the run is faster
        assert out[sched]["exec_time"] < out["cfs"]["exec_time"]
