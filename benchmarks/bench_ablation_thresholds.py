"""Ablation: the LOW_UTIL / HIGH_UTIL decision bands (paper §IV-B).

"Those boundaries are required to avoid that the scheduler changes too
quickly the priority of a task, oscillating between two possible
solutions."  Sweeps the HIGH band on MetBench: any setting below the
hot workers' utilization behaves identically (the knob is robust, not
finicky), and since a saturated worker's utilization is exactly 100%,
even the most extreme band still catches it — the detector cannot be
blinded by mis-tuning HIGH_UTIL alone.
"""

import pytest

from repro.experiments.common import run_experiment
from repro.kernel.tunables import Tunables
from repro.workloads.metbench import MetBench


def _run():
    out = {}
    for high in (70.0, 85.0, 95.0, 99.995):
        tun = Tunables()
        tun.set("hpcsched/high_util", high)
        out[high] = run_experiment(
            MetBench(iterations=15), "uniform", tunables=tun, keep_trace=False
        )
    out["cfs"] = run_experiment(
        MetBench(iterations=15), "cfs", keep_trace=False
    )
    return out


def test_ablation_thresholds(bench_once):
    out = bench_once(_run)
    base = out["cfs"]
    print()
    print(f"{'HIGH_UTIL':>10}{'exec':>9}{'gain':>8}{'changes':>9}")
    for high in (70.0, 85.0, 95.0, 99.995):
        res = out[high]
        print(f"{high:>10}{res.exec_time:>8.2f}s"
              f"{res.improvement_over(base):>7.1f}%{res.priority_changes:>9}")

    # every band catches the saturated workers and balances identically
    for high in (70.0, 85.0, 95.0, 99.995):
        assert out[high].improvement_over(base) > 9.0, high
        assert out[high].priority_changes == 2, high
    # identical decisions -> identical runs across the sweep
    execs = {round(out[h].exec_time, 9) for h in (70.0, 85.0, 95.0, 99.995)}
    assert len(execs) == 1
