"""Table V: BT-MZ class A, full size (200 iterations, ~95 simulated s).

Shape assertions: the baseline utilization ladder (18/30/66/100), ~16%
gain for static and both heuristics, heuristics converging to the same
stable prioritization as the hand-tuned static one.
"""

import pytest

from repro.analysis.tables import format_characterization_table, format_comparison
from repro.experiments.btmz import PAPER_COMP, PAPER_EXEC, run_table5


def _run():
    return run_table5(keep_trace=False)


def test_table5_btmz(bench_once):
    results = bench_once(_run)
    print()
    print(format_characterization_table(list(results.values()), "Table V (BT-MZ)"))
    print()
    print(format_comparison(results, PAPER_EXEC, PAPER_COMP, "vs. paper:"))

    base = results["cfs"]
    assert base.exec_time == pytest.approx(PAPER_EXEC["cfs"], rel=0.02)
    comps = [base.tasks[f"P{i}"].pct_comp for i in range(1, 5)]
    assert comps == sorted(comps)
    assert comps[3] > 99.0
    assert comps[0] < 25.0

    for sched in ("static", "uniform", "adaptive"):
        res = results[sched]
        gain = res.improvement_over(base)
        assert 12.0 < gain < 19.0, f"{sched} gain {gain:.1f}%"
        assert res.exec_time == pytest.approx(PAPER_EXEC[sched], rel=0.05)
        # P4 stays saturated (it paces the whole computation)
        assert res.tasks["P4"].pct_comp > 99.0

    # dynamic ~= static without any programmer effort (paper's headline)
    assert results["uniform"].exec_time == pytest.approx(
        results["static"].exec_time, rel=0.03
    )
