"""Figure 4: MetBenchVar traces — behaviour reversal and recovery.

Checks the paper's visual story: (a) baseline alternates which pair
waits; (b) static is balanced in periods 1/3 but *reversed* in period
2 (P2/P4 wait heavily there); (c,d) the dynamic heuristics re-balance
within a couple of iterations after each swap.
"""

from repro.experiments.figures import figure4
from repro.trace.records import State


def test_fig4_metbenchvar_traces(bench_once):
    out = bench_once(figure4, iterations=45, k=15)
    for sched, entry in out.items():
        print(f"\n== Fig 4 {sched} (exec {entry['exec_time']:.2f}s) ==")
        print(entry["gantt"])

    def wait_density(gantt, row, lo, hi):
        for line in gantt.splitlines():
            if line.startswith(row):
                body = line.split(None, 1)[1] if " " in line else line[len(row):]
                body = line[3:]  # fixed label width is small; slice row
                seg = body[int(lo * len(body)): int(hi * len(body))]
                return seg.count(".") / max(1, len(seg))
        raise AssertionError(row)

    static = out["static"]["gantt"]
    # static, period 2 (middle third): the boosted pair (P2) now has the
    # small load *and* the high priority -> it waits conspicuously
    assert wait_density(static, "P2", 0.38, 0.62) > 0.2
    # static, period 1: balanced, nobody waits much
    assert wait_density(static, "P2", 0.05, 0.30) < 0.1

    uniform = out["uniform"]["gantt"]
    # dynamic: waiting confined to short adaptation windows
    assert wait_density(uniform, "P1", 0.0, 1.0) < 0.15
    assert wait_density(uniform, "P2", 0.0, 1.0) < 0.15

    # the dynamic run finished faster than the static one
    assert out["uniform"]["exec_time"] < out["static"]["exec_time"]
