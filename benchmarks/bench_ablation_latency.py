"""Ablation: decomposing SIESTA's gain (paper §V-D).

Three bars: CFS baseline, the HPC class with the Null mechanism (the
scheduling-policy gain only: class ordering beats the OS daemons), and
full HPCSched (policy + balancing).  The paper's claim is that the
improvement "does not come from load imbalance reduction but from ...
the scheduler policy" — so the middle bar must carry most of the gain.
"""

from repro.experiments.ablations import ablation_latency


def test_ablation_latency_decomposition(bench_once):
    out = bench_once(ablation_latency)
    print()
    print(f"cfs baseline:        {out['cfs']:.2f}s")
    print(f"HPC policy only:     {out['hpc_policy_only']:.2f}s "
          f"({out['policy_gain_pct']:.1f}% gain)")
    print(f"full HPCSched:       {out['hpcsched_full']:.2f}s "
          f"({out['full_gain_pct']:.1f}% gain)")

    assert out["hpc_policy_only"] < out["cfs"]
    assert out["hpcsched_full"] < out["cfs"]
    # the policy alone provides the bulk of the improvement
    assert out["policy_gain_pct"] > 0.6 * out["full_gain_pct"]
