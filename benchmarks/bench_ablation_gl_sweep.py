"""Ablation: Adaptive heuristic aggressiveness (G/L sweep).

The paper's §IV-B trade-off: L->1 reacts within an iteration but can
over-react; G->1 degenerates into the Uniform behaviour.  Swept on
MetBenchVar, where responsiveness matters.
"""

from repro.experiments.ablations import ablation_gl


def test_ablation_gl_sweep(bench_once):
    out = bench_once(
        ablation_gl,
        weights=((1.0, 0.0), (0.5, 0.5), (0.1, 0.9)),
        iterations=18,
        k=6,
    )
    base = out["cfs"].exec_time
    print()
    print(f"{'weighting':<16}{'exec':>9}{'gain':>8}{'prio changes':>14}")
    for key, res in out.items():
        if key == "cfs":
            continue
        gain = res.improvement_over(out["cfs"])
        print(f"{key:<16}{res.exec_time:>8.2f}s{gain:>7.1f}%{res.priority_changes:>14}")
    print(f"{'cfs baseline':<16}{base:>8.2f}s")

    for key, res in out.items():
        if key != "cfs":
            assert res.exec_time < base, key
