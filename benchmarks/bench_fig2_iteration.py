"""Figure 2: one task's iterative compute/wait structure."""

from repro.experiments.figures import figure2
from repro.trace.records import State


def test_fig2_iteration_trace(bench_once):
    out = bench_once(figure2, iterations=4)
    print()
    print(out["gantt"])
    kinds = [k for k, _, _ in out["spans"]]
    # tR/tW alternation: a compute phase between consecutive waits
    assert kinds.count("RUNNING") >= 4
    assert kinds.count("WAITING") >= 4
    for a, b in zip(kinds, kinds[1:]):
        assert a != b, "states must alternate"
