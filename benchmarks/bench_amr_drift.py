"""Extension bench: AMR-style drifting load (paper §II-A, [11]).

A refinement front sweeps across the ranks over 60 iterations — the
*gradual* dynamic regime (vs MetBenchVar's step reversal).  HPCSched
must re-balance every time the hot spot crosses a core boundary; the
bench asserts it tracks the drift profitably without flapping on every
iteration.
"""

import pytest

from repro.experiments.common import run_experiment
from repro.workloads.amr import AMRDrift


def _run():
    out = {}
    for sched in ("cfs", "uniform", "adaptive", "hybrid"):
        out[sched] = run_experiment(AMRDrift(), sched, keep_trace=False)
    return out


def test_amr_drift_tracking(bench_once):
    out = bench_once(_run)
    base = out["cfs"]
    print()
    print(f"{'scheduler':<10}{'exec':>9}{'gain':>8}{'changes':>9}")
    for sched, res in out.items():
        print(f"{sched:<10}{res.exec_time:>8.2f}s"
              f"{res.improvement_over(base):>7.1f}%"
              f"{res.priority_changes:>9}")

    for sched in ("uniform", "adaptive", "hybrid"):
        res = out[sched]
        assert res.improvement_over(base) > 2.0, sched
        # re-balanced several times (tracking) ...
        assert res.priority_changes >= 6, sched
        # ... but far less than once per iteration (no flapping)
        assert res.priority_changes < 30, sched
