"""Characterization bench: the reference-[4] priority-pair sweep.

Regenerates the ISCA'08-style speed matrix for the CPU-bound profile
and cross-checks the two faces of the performance model: the PMU's
measured decode shares must equal the Table I arithmetic, and the
measured speeds must equal the calibrated profile table.
"""

from repro.experiments.characterization import run_characterization


def test_characterization_sweep(bench_once):
    out = bench_once(run_characterization)
    print()
    print(out["rendered"])
    print(f"max decode-share error: {out['max_share_error']:.2e}")
    print(f"max speed error:        {out['max_speed_error']:.2e}")
    assert out["max_share_error"] < 1e-9
    assert out["max_speed_error"] < 1e-9
