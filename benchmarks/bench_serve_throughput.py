"""Service throughput: ``repro.serve`` end to end, cold and warm.

A 32-job single-tenant batch (table1 at 32 seeds) is pushed through a
full service lifecycle — boot, admission, journal, fair-share dispatch,
drain — three ways:

1. cold cache, 1 worker slot,
2. cold cache, 4 worker slots (fresh root),
3. warm: a second tenant resubmits the identical batch on the same
   root, so every job must complete from the shared content-addressed
   cache without a single execution.

Thread workers keep the measurement about service overhead rather than
process fork cost, and the virtual clock (``manual_clock``) keeps
epoch timing out of the wall time entirely.  No wall-clock speedup is
asserted — the per-job work (table1) is light and the host may be a
single CPU — only correctness: determinism across worker counts and a
100% cache-hit warm pass.
"""

import asyncio
import time

from repro.campaign.spec import RunSpec
from repro.serve.service import CampaignService
from repro.serve.state import ServeConfig

JOBS = 32


def _run_pass(root, tenant, workers):
    """One boot→submit→drain→stop lifecycle; returns (records, metrics)."""

    async def scenario():
        service = CampaignService(
            ServeConfig(
                root=str(root),
                port=0,
                workers=workers,
                worker_mode="thread",
                manual_clock=True,
                epoch_interval=None,
            )
        )
        await service.start()
        specs = [(RunSpec(experiment="table1", seed=s), "") for s in range(JOBS)]
        accepted, rejection = service.submit(tenant, specs)
        assert rejection is None and len(accepted) == JOBS
        assert await service.drain(timeout=600.0)
        records = [
            service.queue.get(job.job_id).to_public(with_result=True)
            for job in accepted
        ]
        metrics = service.metrics()
        await service.stop()
        return records, metrics

    return asyncio.run(scenario())


def test_serve_throughput_cold_and_warm(bench_once, tmp_path):
    t0 = time.perf_counter()
    cold1, _ = _run_pass(tmp_path / "w1", "bench", workers=1)
    t_cold1 = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold4, _ = bench_once(_run_pass, tmp_path / "w4", "bench", workers=4)
    t_cold4 = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm, metrics = _run_pass(tmp_path / "w4", "warm", workers=4)
    t_warm = time.perf_counter() - t0

    print(
        f"\ncold(1w) {t_cold1:.3f}s ({JOBS / t_cold1:,.0f} jobs/s) | "
        f"cold(4w) {t_cold4:.3f}s ({JOBS / t_cold4:,.0f} jobs/s) | "
        f"warm {t_warm:.3f}s ({JOBS / t_warm:,.0f} jobs/s)"
    )

    for records in (cold1, cold4, warm):
        assert [rec["state"] for rec in records] == ["OK"] * JOBS

    # Determinism across worker counts and roots: same spec, same bytes.
    assert [r["result"] for r in cold1] == [r["result"] for r in cold4]
    assert [r["result"] for r in warm] == [r["result"] for r in cold4]

    # The warm tenant never executed anything: 32/32 cache hits.
    assert all(rec["cache_hit"] for rec in warm)
    assert all(rec["executions"] == 0 for rec in warm)
    assert metrics["cache"]["hits"] == JOBS
    assert metrics["states"] == {"OK": 2 * JOBS}
