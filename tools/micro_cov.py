#!/usr/bin/env python
"""Dependency-free line coverage for the test suite.

The container has no ``coverage``/``pytest-cov``, so CI measures line
coverage with the interpreter's own tracing hooks: executable lines are
enumerated statically from compiled code objects (``co_lines``), executed
lines are collected by a ``sys.settrace`` hook (``sys.monitoring`` on
3.12+) restricted to the target tree, and the ratio gates the build.

Usage::

    python tools/micro_cov.py --target src/repro --fail-under 80 \
        -- -q -m "not slow"

Everything after ``--`` is forwarded to ``pytest.main``.  Writes a
per-file summary to stdout and exits non-zero when total coverage falls
below ``--fail-under``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from types import CodeType
from typing import Dict, Set, Tuple


def executable_lines(root: Path) -> Dict[str, Set[int]]:
    """Statically enumerate executable lines per file under ``root``.

    Compiles each module and walks the code-object tree; ``co_lines``
    yields exactly the lines the interpreter can attribute execution to,
    so numerator and denominator use the same definition of "a line".
    """
    table: Dict[str, Set[int]] = {}
    for path in sorted(root.rglob("*.py")):
        try:
            code = compile(path.read_text(), str(path), "exec")
        except SyntaxError:  # pragma: no cover - target tree must parse
            continue
        lines: Set[int] = set()
        stack = [code]
        while stack:
            obj = stack.pop()
            for _, _, lineno in obj.co_lines():
                if lineno is not None:
                    lines.add(lineno)
            for const in obj.co_consts:
                if isinstance(const, CodeType):
                    stack.append(const)
        table[str(path.resolve())] = lines
    return table


class Tracer:
    """Collects executed (file, line) pairs for files under a root."""

    def __init__(self, root: Path) -> None:
        self.prefix = str(root.resolve()) + os.sep
        self.hits: Dict[str, Set[int]] = {}

    # -- sys.settrace backend (3.11) -----------------------------------
    def global_trace(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(self.prefix):
            return None
        return self.local_trace

    def local_trace(self, frame, event, arg):
        if event == "line":
            self.hits.setdefault(frame.f_code.co_filename, set()).add(
                frame.f_lineno
            )
        return self.local_trace

    def start(self) -> None:
        if hasattr(sys, "monitoring"):  # pragma: no cover - 3.12+ path
            mon = sys.monitoring
            mon.use_tool_id(mon.COVERAGE_ID, "micro_cov")
            mon.set_events(mon.COVERAGE_ID, mon.events.LINE)

            def on_line(code: CodeType, lineno: int):
                if code.co_filename.startswith(self.prefix):
                    self.hits.setdefault(code.co_filename, set()).add(lineno)
                else:
                    return mon.DISABLE

            mon.register_callback(mon.COVERAGE_ID, mon.events.LINE, on_line)
        else:
            import threading

            sys.settrace(self.global_trace)
            threading.settrace(self.global_trace)

    def stop(self) -> None:
        if hasattr(sys, "monitoring"):  # pragma: no cover - 3.12+ path
            mon = sys.monitoring
            mon.set_events(mon.COVERAGE_ID, 0)
            mon.register_callback(mon.COVERAGE_ID, mon.events.LINE, None)
            mon.free_tool_id(mon.COVERAGE_ID)
        else:
            import threading

            sys.settrace(None)
            threading.settrace(None)


def summarize(
    table: Dict[str, Set[int]], hits: Dict[str, Set[int]], root: Path
) -> Tuple[float, str]:
    """Render the per-file table; returns (total percent, text)."""
    rows = []
    tot_exec = tot_hit = 0
    for filename, lines in sorted(table.items()):
        if not lines:
            continue
        hit = len(lines & hits.get(filename, set()))
        tot_exec += len(lines)
        tot_hit += hit
        rel = os.path.relpath(filename, root.resolve().parent)
        rows.append((rel, len(lines), hit, 100.0 * hit / len(lines)))
    total = 100.0 * tot_hit / tot_exec if tot_exec else 100.0
    width = max((len(r[0]) for r in rows), default=10)
    out = [f"{'file':<{width}}  {'lines':>6} {'hit':>6} {'cover':>7}"]
    for rel, n, hit, pct in rows:
        out.append(f"{rel:<{width}}  {n:>6} {hit:>6} {pct:>6.1f}%")
    out.append(
        f"{'TOTAL':<{width}}  {tot_exec:>6} {tot_hit:>6} {total:>6.1f}%"
    )
    return total, "\n".join(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target", default="src/repro", help="tree to measure coverage for"
    )
    parser.add_argument(
        "--fail-under", type=float, default=0.0, metavar="PCT",
        help="exit non-zero when total coverage is below PCT",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write {total, files} as JSON",
    )
    parser.add_argument(
        "pytest_args", nargs="*",
        help="arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)

    root = Path(args.target)
    if not root.is_dir():
        print(f"no such target tree: {root}", file=sys.stderr)
        return 2
    table = executable_lines(root)

    import pytest

    tracer = Tracer(root)
    tracer.start()
    try:
        status = pytest.main(args.pytest_args or ["-q"])
    finally:
        tracer.stop()
    if status != 0:
        print(f"pytest failed with status {status}", file=sys.stderr)
        return int(status)

    total, text = summarize(table, tracer.hits, root)
    print(text)
    if args.json:
        files = {
            os.path.relpath(f, root.resolve().parent): round(
                100.0 * len(lines & tracer.hits.get(f, set())) / len(lines), 1
            )
            for f, lines in table.items()
            if lines
        }
        Path(args.json).write_text(
            json.dumps({"total": round(total, 2), "files": files}, indent=2)
        )
    if total < args.fail_under:
        print(
            f"coverage {total:.1f}% is below the --fail-under "
            f"{args.fail_under:.1f}% gate",
            file=sys.stderr,
        )
        return 1
    print(f"coverage {total:.1f}% (gate: {args.fail_under:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
